// Package scenario assembles complete simulated hotspot worlds: a shared
// medium, stations (with optional greedy policies and GRC observers),
// access points, wired backhaul links, and UDP/TCP flows. Every experiment
// in the paper's evaluation is a scenario built through this package.
package scenario

import (
	"fmt"

	"greedy80211/internal/detect"
	"greedy80211/internal/mac"
	"greedy80211/internal/medium"
	"greedy80211/internal/metrics"
	"greedy80211/internal/node"
	"greedy80211/internal/phys"
	"greedy80211/internal/sim"
	"greedy80211/internal/transport"
	"greedy80211/internal/wireline"
)

// Transport selects a flow's transport protocol.
type Transport int

const (
	// UDP carries constant-bit-rate traffic.
	UDP Transport = iota + 1
	// TCP carries a saturating Reno connection.
	TCP
)

// String implements fmt.Stringer.
func (t Transport) String() string {
	switch t {
	case UDP:
		return "udp"
	case TCP:
		return "tcp"
	default:
		return fmt.Sprintf("Transport(%d)", int(t))
	}
}

// Config parameterizes a world.
type Config struct {
	// Seed drives every random stream in the world.
	Seed int64
	// Band selects 802.11b (default) or 802.11a.
	Band phys.Band
	// UseRTSCTS enables the RTS/CTS exchange (the paper's simulations
	// enable it unless studying hidden-terminal fake ACKs).
	UseRTSCTS bool
	// Propagation overrides the default all-in-range propagation.
	Propagation *phys.Propagation
	// Error is the channel error model applied to every link: one typed
	// spec (BER, FER, data-FER, or rate ladder) with explicit validation.
	// The zero value is loss-free. Setting Error together with any of the
	// deprecated per-kind fields below is rejected by NewWorld.
	Error phys.ErrorSpec
	// DefaultBER applies the Table III error model to every link.
	//
	// Deprecated: set Error to phys.BERSpec(ber) instead. The old fields
	// formed a silent precedence stack (DataFER over FER over BER); they
	// keep working for existing call sites with the old semantics.
	DefaultBER float64
	// DefaultFER applies a size-independent frame error rate to every
	// link; it takes precedence over DefaultBER when positive.
	//
	// Deprecated: set Error to phys.FERSpec(rate) instead.
	DefaultFER float64
	// DefaultDataFER applies a frame error rate to data-sized frames only
	// (control frames pass), the "data frame error rate" knob of the
	// fake-ACK experiments. It takes precedence over DefaultFER.
	//
	// Deprecated: set Error to phys.DataFERSpec(rate) instead.
	DefaultDataFER float64
	// ForceCapture resolves every reception overlap to the strongest
	// frame (the paper's assumption in the ACK-spoofing evaluation).
	ForceCapture bool
	// RateError installs a PHY-rate-dependent loss model (auto-rate
	// extension); it takes precedence over the BER/FER knobs for frames
	// carrying a transmission rate.
	//
	// Deprecated: set Error to phys.RateLadderSpec(ferByRate, minUnits)
	// instead (or keep this field to combine a rate ladder with a default
	// model, which the one-kind Error spec deliberately cannot express).
	RateError phys.RateErrorModel
	// DisableCapture turns the capture effect off entirely.
	DisableCapture bool
	// QueueCap bounds every MAC queue; zero keeps the default of 50.
	QueueCap int
	// Trace attaches a channel tap recording every transmission and
	// reception outcome when non-nil.
	Trace medium.Tap
	// ControlRateBps overrides the band's basic rate for control frames
	// (RTS/CTS/ACK); zero keeps the default (1 Mbps on 802.11b). The
	// control-rate ablation uses it.
	ControlRateBps int64
	// DisablePooling turns off the world's frame and packet pools, so
	// every frame/packet is heap-allocated as in the pre-pooling
	// simulator. Outputs are identical either way (the byte-identity
	// regression tests assert it); the switch exists for those tests and
	// for pooled-vs-unpooled benchmark comparisons.
	DisablePooling bool
	// DisableNeighborScoping makes the medium fan every transmission out
	// with the legacy broadcast scan instead of the transmitter's
	// neighbor list. Outputs are identical either way (the neighbor-vs-
	// broadcast identity tests assert it); the switch exists for those
	// tests and for scaling benchmark comparisons.
	DisableNeighborScoping bool
	// FlowStagger separates successive flow start times in Run; zero
	// keeps the historical 1 ms. At paper scale (a handful of flows)
	// 1 ms just decides who grabs the channel first, but a 1000-flow
	// multi-BSS world would spend its whole first simulated second
	// starting flows, so BuildCells defaults to a much tighter stagger.
	FlowStagger sim.Time
}

// resolveErrorModels materializes the configured channel error model,
// rejecting a Config that sets both the typed Error spec and any of the
// deprecated per-kind fields. The deprecated fields alone reproduce the
// old silent precedence stack (DataFER over FER over BER, with RateError
// riding alongside for frames that carry a PHY rate).
func (c Config) resolveErrorModels() (phys.ErrorModel, phys.RateErrorModel, error) {
	legacy := c.DefaultBER > 0 || c.DefaultFER > 0 || c.DefaultDataFER > 0 || c.RateError != nil
	if !c.Error.IsZero() {
		if legacy {
			return nil, nil, fmt.Errorf(
				"scenario: Config.Error conflicts with deprecated DefaultBER/DefaultFER/DefaultDataFER/RateError; set only the Error spec")
		}
		em, rem, err := c.Error.Models()
		if err != nil {
			return nil, nil, fmt.Errorf("scenario: %w", err)
		}
		return em, rem, nil
	}
	var em phys.ErrorModel
	switch {
	case c.DefaultDataFER > 0:
		em = phys.SizeGatedFER{Rate: c.DefaultDataFER, MinUnits: phys.DataFERMinUnits}
	case c.DefaultFER > 0:
		em = phys.FixedFERModel{Rate: c.DefaultFER}
	case c.DefaultBER > 0:
		em = phys.UnitErrorModel{BER: c.DefaultBER}
	}
	return em, c.RateError, nil
}

// broadcastMediumForTest forces every subsequently built world onto the
// legacy broadcast delivery path, so identity tests can rerun whole
// artifact pipelines "as before the neighbor refactor" without plumbing a
// knob through every runner.
var broadcastMediumForTest bool

// SetBroadcastMediumForTest toggles the legacy broadcast delivery path
// for every world built until reset. Test-only; not safe to flip while
// worlds are being built concurrently.
func SetBroadcastMediumForTest(on bool) { broadcastMediumForTest = on }

// Station is one host in the world: a wireless station, an AP, or a
// wired-only remote host (DCF nil).
type Station struct {
	Name string
	ID   mac.NodeID
	Node *node.Node
	DCF  *mac.DCF
	GRC  *detect.GRC
}

// StationOpts customizes a wireless station.
type StationOpts struct {
	// Policy installs a (possibly greedy) receiver policy.
	Policy mac.ReceiverPolicy
	// GRC installs the countermeasure observer with the given config.
	GRC *detect.Config
	// SpoofEmulationVictims lists already-added stations toward which
	// this sender treats ACK timeouts as success (Table VIII emulation).
	SpoofEmulationVictims []string
	// CWMinCapPeers lists already-added stations toward which this
	// sender's CW stays pinned at CWmin (Table IX emulation).
	CWMinCapPeers []string
	// AutoRate installs a per-destination rate controller (auto-rate
	// extension); nil keeps the band's fixed data rate.
	AutoRate mac.RateController
	// QueueCap overrides the world's MAC queue bound for this station.
	QueueCap int
	// Channel places the station's radio on a specific channel (multi-BSS
	// worlds); zero means the medium's default channel. Radios on
	// different channels never interact.
	Channel int
}

// Flow is one end-to-end traffic stream.
type Flow struct {
	ID        int
	Kind      Transport
	From, To  string
	CBR       *transport.CBRSource
	UDPSink   *transport.UDPSink
	TCPSend   *transport.TCPSender
	TCPRecv   *transport.TCPReceiver
	startedAt sim.Time
}

// Stats reports the flow's receiver-side goodput statistics.
func (f *Flow) Stats() transport.FlowStats {
	switch f.Kind {
	case UDP:
		return f.UDPSink.Stats()
	case TCP:
		return f.TCPRecv.Stats()
	default:
		return transport.FlowStats{}
	}
}

// GoodputMbps reports application goodput in Mbit/s over duration d.
func (f *Flow) GoodputMbps(d sim.Time) float64 {
	return f.Stats().GoodputBps(d) / 1e6
}

// World is a fully wired simulation instance.
type World struct {
	Sched  *sim.Scheduler
	Medium *medium.Medium
	Params phys.Params

	cfg      Config
	stations map[string]*Station
	flows    map[int]*Flow
	order    []*Flow
	probes   []*ProbeFlow
	wired    map[string]wiredAttachment // host name -> its link toward an AP
	nextID   mac.NodeID
	metrics  *metrics.Registry
	frames   *mac.FramePool        // nil when pooling is disabled
	packets  *transport.PacketPool // nil when pooling is disabled
}

type wiredAttachment struct {
	hostEnd *wireline.Endpoint // at the remote host
	apEnd   *wireline.Endpoint // at the access point
	apName  string
}

// NewWorld builds an empty world.
func NewWorld(cfg Config) (*World, error) {
	if cfg.Band == 0 {
		cfg.Band = phys.Band80211B
	}
	var params phys.Params
	switch cfg.Band {
	case phys.Band80211B:
		params = phys.Params80211B()
	case phys.Band80211A:
		params = phys.Params80211A()
	default:
		return nil, fmt.Errorf("scenario: unknown band %v", cfg.Band)
	}
	if cfg.ControlRateBps > 0 {
		params.BasicRateBps = cfg.ControlRateBps
	}
	sched := sim.NewScheduler(cfg.Seed)
	mcfg := medium.DefaultConfig()
	if cfg.Propagation != nil {
		mcfg.Propagation = *cfg.Propagation
	}
	em, rem, err := cfg.resolveErrorModels()
	if err != nil {
		return nil, err
	}
	mcfg.DefaultError = em
	mcfg.RateError = rem
	mcfg.ForceCapture = cfg.ForceCapture
	mcfg.Tap = cfg.Trace
	mcfg.DisableNeighborScoping = cfg.DisableNeighborScoping || broadcastMediumForTest
	reg := metrics.NewRegistry()
	mcfg.Metrics = reg
	if cfg.DisableCapture {
		mcfg.CaptureEnabled = false
	}
	switch cfg.Band {
	case phys.Band80211A:
		mcfg.Addr = medium.AddrModel80211A()
	default:
		mcfg.Addr = medium.AddrModel80211B()
	}
	med, err := medium.New(sched, mcfg)
	if err != nil {
		return nil, fmt.Errorf("scenario: %w", err)
	}
	w := &World{
		Sched:    sched,
		Medium:   med,
		Params:   params,
		cfg:      cfg,
		stations: make(map[string]*Station),
		flows:    make(map[int]*Flow),
		wired:    make(map[string]wiredAttachment),
		metrics:  reg,
	}
	if !cfg.DisablePooling {
		w.frames = mac.NewFramePool()
		w.packets = transport.NewPacketPool()
	}
	return w, nil
}

// Metrics returns the world's always-on telemetry registry.
func (w *World) Metrics() *metrics.Registry { return w.metrics }

// MetricsSnapshot folds the registry and every station's MAC accounting
// into an immutable snapshot covering the simulated time elapsed so far
// (call it after Run).
func (w *World) MetricsSnapshot() *metrics.Snapshot {
	return w.metrics.Snapshot(w.Sched.Now())
}

// Station looks up a station by name.
func (w *World) Station(name string) (*Station, bool) {
	s, ok := w.stations[name]
	return s, ok
}

// Flow looks up a flow by id.
func (w *World) Flow(id int) (*Flow, bool) {
	f, ok := w.flows[id]
	return f, ok
}

// Flows returns every flow in creation order.
func (w *World) Flows() []*Flow { return w.order }

func (w *World) resolve(names []string) (map[mac.NodeID]bool, error) {
	if len(names) == 0 {
		return nil, nil
	}
	out := make(map[mac.NodeID]bool, len(names))
	for _, n := range names {
		s, ok := w.stations[n]
		if !ok {
			return nil, fmt.Errorf("scenario: unknown station %q (add it first)", n)
		}
		out[s.ID] = true
	}
	return out, nil
}

// AddStation creates a wireless station at pos.
func (w *World) AddStation(name string, pos phys.Position, opts StationOpts) (*Station, error) {
	if _, dup := w.stations[name]; dup {
		return nil, fmt.Errorf("scenario: duplicate station %q", name)
	}
	spoofTo, err := w.resolve(opts.SpoofEmulationVictims)
	if err != nil {
		return nil, err
	}
	cwCap, err := w.resolve(opts.CWMinCapPeers)
	if err != nil {
		return nil, err
	}
	w.nextID++
	id := w.nextID
	n := node.New(name)
	st := &Station{Name: name, ID: id, Node: n}
	queueCap := opts.QueueCap
	if queueCap == 0 {
		queueCap = w.cfg.QueueCap
	}
	var obs mac.Observer
	if opts.GRC != nil {
		st.GRC = detect.New(w.Sched, w.Params, *opts.GRC)
		obs = st.GRC
	}
	dcf := mac.New(w.Sched, w.Medium, n, mac.Config{
		ID:               id,
		Params:           w.Params,
		UseRTSCTS:        w.cfg.UseRTSCTS,
		QueueCap:         queueCap,
		Policy:           opts.Policy,
		Observer:         obs,
		SpoofEmulationTo: spoofTo,
		CWMinCapTo:       cwCap,
		AutoRate:         opts.AutoRate,
		Frames:           w.frames,
	})
	st.DCF = dcf
	n.AttachMAC(dcf)
	if err := w.Medium.AddRadioOn(id, pos, opts.Channel, dcf); err != nil {
		return nil, fmt.Errorf("scenario: %w", err)
	}
	w.metrics.Register(id, name, dcf)
	w.stations[name] = st
	return st, nil
}

// AddWiredHost creates a remote host with no radio; connect it to an AP
// with ConnectWired before adding flows through it.
func (w *World) AddWiredHost(name string) (*Station, error) {
	if _, dup := w.stations[name]; dup {
		return nil, fmt.Errorf("scenario: duplicate station %q", name)
	}
	st := &Station{Name: name, Node: node.New(name)}
	w.stations[name] = st
	return st, nil
}

// ConnectWired links a wired host to an access point.
func (w *World) ConnectWired(host, ap string, cfg wireline.Config) error {
	h, ok := w.stations[host]
	if !ok || h.DCF != nil {
		return fmt.Errorf("scenario: %q is not a wired host", host)
	}
	a, ok := w.stations[ap]
	if !ok || a.DCF == nil {
		return fmt.Errorf("scenario: %q is not a wireless AP", ap)
	}
	if _, dup := w.wired[host]; dup {
		return fmt.Errorf("scenario: host %q already connected", host)
	}
	link := wireline.NewLink(w.Sched, cfg)
	link.A().Attach(h.Node.Inject)
	link.B().Attach(a.Node.Inject)
	w.wired[host] = wiredAttachment{hostEnd: link.A(), apEnd: link.B(), apName: ap}
	return nil
}

// splitRoute sends data packets one way and (TCP) ACK packets the other —
// the AP's bridging rule for a flow spanning wireless and wireline.
type splitRoute struct {
	data, ack node.Route
}

// Forward implements node.Route.
func (r splitRoute) Forward(p *transport.Packet) bool {
	if p.IsACK {
		return r.ack.Forward(p)
	}
	return r.data.Forward(p)
}

// routeFlow installs forwarding for a downlink flow from -> to.
// Supported shapes: wireless sender -> wireless receiver, and wired host
// -> (AP bridge) -> wireless receiver.
func (w *World) routeFlow(id int, from, to *Station) error {
	switch {
	case from.DCF != nil && to.DCF != nil:
		from.Node.SetRoute(id, from.Node.WirelessTo(to.ID))
		to.Node.SetRoute(id, to.Node.WirelessTo(from.ID))
		return nil
	case from.DCF == nil && to.DCF != nil:
		att, ok := w.wired[from.Name]
		if !ok {
			return fmt.Errorf("scenario: wired host %q not connected to an AP", from.Name)
		}
		ap := w.stations[att.apName]
		from.Node.SetRoute(id, att.hostEnd)
		ap.Node.SetRoute(id, splitRoute{
			data: ap.Node.WirelessTo(to.ID),
			ack:  node.RouteFunc(att.apEnd.Forward),
		})
		to.Node.SetRoute(id, to.Node.WirelessTo(ap.ID))
		return nil
	default:
		return fmt.Errorf("scenario: unsupported flow shape %q -> %q", from.Name, to.Name)
	}
}

func (w *World) newFlow(id int, kind Transport, from, to string) (*Flow, *Station, *Station, error) {
	if _, dup := w.flows[id]; dup {
		return nil, nil, nil, fmt.Errorf("scenario: duplicate flow %d", id)
	}
	f, ok := w.stations[from]
	if !ok {
		return nil, nil, nil, fmt.Errorf("scenario: unknown station %q", from)
	}
	t, ok := w.stations[to]
	if !ok {
		return nil, nil, nil, fmt.Errorf("scenario: unknown station %q", to)
	}
	fl := &Flow{ID: id, Kind: kind, From: from, To: to}
	if err := w.routeFlow(id, f, t); err != nil {
		return nil, nil, nil, err
	}
	w.flows[id] = fl
	w.order = append(w.order, fl)
	return fl, f, t, nil
}

// AddUDPFlow creates a CBR/UDP flow of payloadBytes packets at rateBps
// application bits per second from one station to another.
func (w *World) AddUDPFlow(id int, from, to string, rateBps float64, payloadBytes int) (*Flow, error) {
	fl, f, t, err := w.newFlow(id, UDP, from, to)
	if err != nil {
		return nil, err
	}
	fl.CBR = transport.NewCBRSource(w.Sched, f.Node.OutputFor(id), id, payloadBytes,
		transport.CBRIntervalForRate(rateBps, payloadBytes))
	fl.CBR.UsePool(w.packets)
	fl.UDPSink = transport.NewUDPSink()
	t.Node.AddAgent(id, fl.UDPSink)
	return fl, nil
}

// AddTCPFlow creates a saturating TCP Reno flow.
func (w *World) AddTCPFlow(id int, from, to string, cfg transport.TCPConfig) (*Flow, error) {
	cfg.Flow = id
	fl, f, t, err := w.newFlow(id, TCP, from, to)
	if err != nil {
		return nil, err
	}
	fl.TCPSend = transport.NewTCPSender(w.Sched, f.Node.OutputFor(id), cfg)
	fl.TCPSend.UsePool(w.packets)
	if cfg.AckDelay > 0 {
		fl.TCPRecv = transport.NewTCPReceiverDelayed(w.Sched, id, t.Node.OutputFor(id), cfg.AckDelay)
	} else {
		fl.TCPRecv = transport.NewTCPReceiver(id, t.Node.OutputFor(id))
	}
	fl.TCPRecv.UsePool(w.packets)
	f.Node.AddAgent(id, fl.TCPSend)
	t.Node.AddAgent(id, fl.TCPRecv)
	return fl, nil
}

// ProbeFlow is an active-probing flow pair (Section VII-C): a Prober at
// the sender side and a Responder at the receiver side, used to measure
// application-layer loss for the fake-ACK detector.
type ProbeFlow struct {
	ID        int
	Prober    *detect.Prober
	Responder *detect.Responder
}

// AddProbeFlow installs a ping-style probe flow from one station to
// another; the prober starts with the world's other flows.
func (w *World) AddProbeFlow(id int, from, to string, interval sim.Time) (*ProbeFlow, error) {
	if _, dup := w.flows[id]; dup {
		return nil, fmt.Errorf("scenario: duplicate flow %d", id)
	}
	f, ok := w.stations[from]
	if !ok {
		return nil, fmt.Errorf("scenario: unknown station %q", from)
	}
	t, ok := w.stations[to]
	if !ok {
		return nil, fmt.Errorf("scenario: unknown station %q", to)
	}
	if err := w.routeFlow(id, f, t); err != nil {
		return nil, err
	}
	pf := &ProbeFlow{
		ID:     id,
		Prober: detect.NewProber(w.Sched, f.Node.OutputFor(id), id, interval),
	}
	pf.Responder = detect.NewResponder(id, t.Node.OutputFor(id))
	f.Node.AddAgent(id, pf.Prober)
	t.Node.AddAgent(id, pf.Responder)
	w.probes = append(w.probes, pf)
	return pf, nil
}

// stationNamer and paramsSink are the duck-typed hooks AttachTrace feeds:
// trace.Recorder implements both, but scenario must not import trace
// (trace imports medium/mac, and keeping scenario below it avoids a
// needless coupling), so the hooks are structural.
type stationNamer interface {
	SetStationName(id mac.NodeID, name string)
}

type paramsSink interface {
	SetParams(p phys.Params)
}

// AttachTrace wires a flight recorder into a fully built world: the tap
// hears every channel event, the probe hears every station's MAC-internal
// events. Either may be nil. If the tap or probe also implements
// SetStationName/SetParams (trace.Recorder does), it learns the station
// names and band timing for rendering and invariant checking. Call it
// after the last AddStation and before Run.
func (w *World) AttachTrace(tap medium.Tap, probe mac.Probe) {
	if tap != nil {
		w.Medium.AddTap(tap)
	}
	for _, hook := range []any{tap, probe} {
		if hook == nil {
			continue
		}
		if ps, ok := hook.(paramsSink); ok {
			ps.SetParams(w.Params)
		}
		if sn, ok := hook.(stationNamer); ok {
			for _, st := range w.stations {
				if st.DCF != nil {
					sn.SetStationName(st.ID, st.Name)
				}
			}
		}
		// The same object attached as both tap and probe hears each hook
		// once only.
		if tap != nil && probe != nil && any(tap) == any(probe) {
			break
		}
	}
	if probe != nil {
		for _, st := range w.stations {
			if st.DCF != nil {
				st.DCF.SetProbe(probe)
			}
		}
	}
}

// Run starts every flow (staggered by Config.FlowStagger — 1 ms by
// default — in creation order, so "who grabs the channel first" is
// deterministic) and executes the world for d of simulated time.
func (w *World) Run(d sim.Time) {
	stagger := w.cfg.FlowStagger
	if stagger == 0 {
		stagger = sim.Millisecond
	}
	for i, fl := range w.order {
		fl := fl
		start := sim.Time(i) * stagger
		fl.startedAt = start
		switch fl.Kind {
		case UDP:
			w.Sched.At(start, fl.CBR.Start)
		case TCP:
			w.Sched.At(start, fl.TCPSend.Start)
		}
	}
	for _, pf := range w.probes {
		pf := pf
		w.Sched.Schedule(0, pf.Prober.Start)
	}
	w.Sched.RunUntil(d)
}
