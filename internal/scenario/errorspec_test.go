package scenario

import (
	"strings"
	"testing"

	"greedy80211/internal/phys"
	"greedy80211/internal/sim"
)

// TestConfigErrorSpecConflictRejected: a Config carrying both the typed
// Error spec and any deprecated per-kind field is an error, not a silent
// precedence decision.
func TestConfigErrorSpecConflictRejected(t *testing.T) {
	for name, cfg := range map[string]Config{
		"spec+ber":     {Seed: 1, Error: phys.BERSpec(1e-4), DefaultBER: 1e-4},
		"spec+fer":     {Seed: 1, Error: phys.BERSpec(1e-4), DefaultFER: 0.2},
		"spec+datafer": {Seed: 1, Error: phys.FERSpec(0.2), DefaultDataFER: 0.5},
		"spec+ladder":  {Seed: 1, Error: phys.FERSpec(0.2), RateError: phys.RateLadderFER{}},
	} {
		t.Run(name, func(t *testing.T) {
			if _, err := NewWorld(cfg); err == nil || !strings.Contains(err.Error(), "conflicts") {
				t.Fatalf("NewWorld = %v, want conflict error", err)
			}
		})
	}
	// An invalid spec is rejected too.
	if _, err := NewWorld(Config{Seed: 1, Error: phys.ErrorSpec{BER: 1e-4}}); err == nil {
		t.Fatal("NewWorld accepted a kindless spec with parameters")
	}
}

// TestConfigLegacyErrorAdapter: the deprecated fields keep their old
// silent precedence (DataFER over FER over BER) and produce worlds
// byte-identical to the equivalent typed spec.
func TestConfigLegacyErrorAdapter(t *testing.T) {
	goodputs := func(cfg Config) []float64 {
		t.Helper()
		w, err := BuildPairs(PairsConfig{Config: cfg, N: 2, Transport: UDP})
		if err != nil {
			t.Fatal(err)
		}
		w.Run(500 * sim.Millisecond)
		var out []float64
		for _, fl := range w.Flows() {
			out = append(out, fl.GoodputMbps(500*sim.Millisecond))
		}
		return out
	}
	legacy := goodputs(Config{
		Seed: 42, UseRTSCTS: true,
		// All three set: the old stack silently picks DataFER.
		DefaultDataFER: 0.4, DefaultFER: 0.2, DefaultBER: 1e-4,
	})
	spec := goodputs(Config{Seed: 42, UseRTSCTS: true, Error: phys.DataFERSpec(0.4)})
	if len(legacy) != len(spec) {
		t.Fatalf("flow counts differ: %d vs %d", len(legacy), len(spec))
	}
	for i := range legacy {
		if legacy[i] != spec[i] {
			t.Fatalf("flow %d: legacy %v != spec %v", i+1, legacy[i], spec[i])
		}
	}
}
