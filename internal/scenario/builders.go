package scenario

import (
	"fmt"

	"greedy80211/internal/phys"
	"greedy80211/internal/sim"
	"greedy80211/internal/stats"
	"greedy80211/internal/transport"
)

// Default workload parameters from the paper's evaluation setup.
const (
	// DefaultPayloadBytes is the paper's data packet size.
	DefaultPayloadBytes = 1024
	// DefaultCBRRateBps saturates an 802.11b medium (the paper's CBR
	// flows are "high enough to saturate the medium" and equal across
	// flows).
	DefaultCBRRateBps = 6e6
)

// SenderName names pair i's sender ("S1", "S2", … with 1-based indices
// as in the paper's figures).
func SenderName(i int) string { return fmt.Sprintf("S%d", i+1) }

// ReceiverName names pair i's receiver ("R1", "R2", …).
func ReceiverName(i int) string { return fmt.Sprintf("R%d", i+1) }

// PairsConfig builds the paper's workhorse topology: n sender-receiver
// pairs, all stations within communication range, flow i from S(i) to
// R(i).
type PairsConfig struct {
	Config
	// N is the number of pairs.
	N int
	// Transport selects UDP (CBR at CBRRateBps) or TCP.
	Transport Transport
	// CBRRateBps is the per-flow UDP rate; zero means the default.
	CBRRateBps float64
	// PayloadBytes is the data packet size; zero means 1024.
	PayloadBytes int
	// ReceiverSpecs declaratively customizes receiver i's station (greedy
	// policy, GRC, queue cap, position); missing indices are normal
	// receivers. Specs are JSON-serializable, so campaign and topology
	// specs can express greedy mixes without Go closures.
	ReceiverSpecs []StationSpec
	// SenderSpecs declaratively customizes sender i's station.
	SenderSpecs []StationSpec
	// ReceiverOpts customizes receiver i's station with a closure — the
	// func-based wrapper around ReceiverSpecs for call sites that need
	// Go values (custom policies, rate controllers). Mutually exclusive
	// with ReceiverSpecs.
	ReceiverOpts func(w *World, i int) StationOpts
	// SenderOpts customizes sender i's station; usually nil (APs behave).
	// Mutually exclusive with SenderSpecs.
	SenderOpts func(w *World, i int) StationOpts
}

// BuildPairs constructs the world and its flows (flow IDs 1..n).
func BuildPairs(cfg PairsConfig) (*World, error) {
	if cfg.N <= 0 {
		return nil, fmt.Errorf("scenario: BuildPairs with %d pairs", cfg.N)
	}
	if cfg.PayloadBytes == 0 {
		cfg.PayloadBytes = DefaultPayloadBytes
	}
	if cfg.CBRRateBps == 0 {
		cfg.CBRRateBps = DefaultCBRRateBps
	}
	w, err := NewWorld(cfg.Config)
	if err != nil {
		return nil, err
	}
	// Receivers first so sender opts (emulation knobs) can reference them.
	// Pairs sit 30 m apart: every station is well inside every other's
	// communication range (250 m default), while each pair's own receiver
	// is ≥10 dB stronger at its sender than any other pair's receiver —
	// the regime in which GRC's capture-based spoof recovery is safe.
	for i := 0; i < cfg.N; i++ {
		def := phys.Position{X: 5, Y: float64(i) * 30}
		opts, pos, err := stationFor(w, i, def, cfg.ReceiverSpecs, cfg.ReceiverOpts)
		if err != nil {
			return nil, err
		}
		if _, err := w.AddStation(ReceiverName(i), pos, opts); err != nil {
			return nil, err
		}
	}
	for i := 0; i < cfg.N; i++ {
		def := phys.Position{X: 0, Y: float64(i) * 30}
		opts, pos, err := stationFor(w, i, def, cfg.SenderSpecs, cfg.SenderOpts)
		if err != nil {
			return nil, err
		}
		if _, err := w.AddStation(SenderName(i), pos, opts); err != nil {
			return nil, err
		}
	}
	for i := 0; i < cfg.N; i++ {
		switch cfg.Transport {
		case TCP:
			_, err = w.AddTCPFlow(i+1, SenderName(i), ReceiverName(i), transport.DefaultTCPConfig(i+1))
		default:
			_, err = w.AddUDPFlow(i+1, SenderName(i), ReceiverName(i), cfg.CBRRateBps, cfg.PayloadBytes)
		}
		if err != nil {
			return nil, err
		}
	}
	return w, nil
}

// SharedAPConfig builds the one-sender-many-receivers topology (Fig 10,
// Fig 14a): a single AP "S1" transmits one flow to each of N receivers.
type SharedAPConfig struct {
	Config
	N            int
	Transport    Transport
	CBRRateBps   float64
	PayloadBytes int
	// ReceiverSpecs declaratively customizes receiver i; mutually
	// exclusive with ReceiverOpts.
	ReceiverSpecs []StationSpec
	ReceiverOpts  func(w *World, i int) StationOpts
}

// BuildSharedAP constructs the world; flow i+1 goes to receiver i. The
// shared MAC queue at the AP produces the head-of-line blocking the paper
// observes.
func BuildSharedAP(cfg SharedAPConfig) (*World, error) {
	if cfg.N <= 0 {
		return nil, fmt.Errorf("scenario: BuildSharedAP with %d receivers", cfg.N)
	}
	if cfg.PayloadBytes == 0 {
		cfg.PayloadBytes = DefaultPayloadBytes
	}
	if cfg.CBRRateBps == 0 {
		cfg.CBRRateBps = DefaultCBRRateBps
	}
	w, err := NewWorld(cfg.Config)
	if err != nil {
		return nil, err
	}
	for i := 0; i < cfg.N; i++ {
		def := phys.Position{X: 5, Y: float64(i) * 3}
		opts, pos, err := stationFor(w, i, def, cfg.ReceiverSpecs, cfg.ReceiverOpts)
		if err != nil {
			return nil, err
		}
		if _, err := w.AddStation(ReceiverName(i), pos, opts); err != nil {
			return nil, err
		}
	}
	if _, err := w.AddStation(SenderName(0), phys.Position{}, StationOpts{}); err != nil {
		return nil, err
	}
	for i := 0; i < cfg.N; i++ {
		switch cfg.Transport {
		case TCP:
			_, err = w.AddTCPFlow(i+1, SenderName(0), ReceiverName(i), transport.DefaultTCPConfig(i+1))
		default:
			_, err = w.AddUDPFlow(i+1, SenderName(0), ReceiverName(i), cfg.CBRRateBps, cfg.PayloadBytes)
		}
		if err != nil {
			return nil, err
		}
	}
	return w, nil
}

// HiddenPairsConfig configures the fake-ACK collision topology — the
// same Config-embedding shape as the other builders, with the usual
// declarative/closure receiver customization pair.
type HiddenPairsConfig struct {
	Config
	// ReceiverSpecs declaratively customizes receiver i (0 = R1, 1 = R2);
	// mutually exclusive with ReceiverOpts.
	ReceiverSpecs []StationSpec
	ReceiverOpts  func(w *World, i int) StationOpts
}

// BuildHiddenPairs constructs the fake-ACK collision topology of Fig 18:
// two APs out of carrier-sense range of each other, receivers between
// them, RTS/CTS disabled, so the receivers suffer hidden-terminal
// collisions. Positions use the 55 m / 99 m propagation of the GRC
// evaluation.
func BuildHiddenPairs(cfg HiddenPairsConfig) (*World, error) {
	prop := phys.GRCPropagation()
	cfg.Propagation = &prop
	cfg.UseRTSCTS = false
	w, err := NewWorld(cfg.Config)
	if err != nil {
		return nil, err
	}
	// S1 at 0 and S2 at 108 m are hidden from each other (CS range 99 m);
	// R1 (54 m) and R2 (55 m) sit between them, each within the 55 m
	// communication range of its sender.
	positions := []struct {
		name string
		x    float64
	}{
		{ReceiverName(0), 54},
		{ReceiverName(1), 55},
		{SenderName(0), 0},
		{SenderName(1), 108.9},
	}
	for i, p := range positions {
		var opts StationOpts
		def := phys.Position{X: p.x}
		pos := def
		if i < 2 {
			var err error
			opts, pos, err = stationFor(w, i, def, cfg.ReceiverSpecs, cfg.ReceiverOpts)
			if err != nil {
				return nil, err
			}
		}
		if _, err := w.AddStation(p.name, pos, opts); err != nil {
			return nil, err
		}
	}
	for i := 0; i < 2; i++ {
		if _, err := w.AddUDPFlow(i+1, SenderName(i), ReceiverName(i), DefaultCBRRateBps, DefaultPayloadBytes); err != nil {
			return nil, err
		}
	}
	return w, nil
}

// MedianOverSeeds runs build for nSeeds consecutive seeds, runs each world
// for d, extracts per-flow goodput in Mbit/s, and reports the per-flow
// median — the paper's 5-run median methodology.
func MedianOverSeeds(nSeeds int, baseSeed int64, d sim.Time, build func(seed int64) (*World, error)) (map[int]float64, error) {
	if nSeeds <= 0 {
		return nil, fmt.Errorf("scenario: nSeeds %d must be positive", nSeeds)
	}
	perFlow := make(map[int][]float64)
	for i := 0; i < nSeeds; i++ {
		w, err := build(baseSeed + int64(i))
		if err != nil {
			return nil, err
		}
		w.Run(d)
		for _, fl := range w.Flows() {
			perFlow[fl.ID] = append(perFlow[fl.ID], fl.GoodputMbps(d))
		}
	}
	out := make(map[int]float64, len(perFlow))
	for id, vals := range perFlow {
		out[id] = stats.Median(vals)
	}
	return out, nil
}
