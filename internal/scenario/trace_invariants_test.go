package scenario

import (
	"testing"

	"greedy80211/internal/greedy"
	"greedy80211/internal/sim"
	"greedy80211/internal/trace"
)

// runTraced builds a pairs world, attaches a checking flight recorder,
// runs it, and returns the collector plus the world.
func runTraced(t *testing.T, cfg PairsConfig, d sim.Time) (*trace.Collector, *World) {
	t.Helper()
	coll := trace.NewCollector(0)
	coll.EnableChecks()
	w, err := BuildPairs(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rec := coll.Start(cfg.Seed)
	w.AttachTrace(rec, rec)
	w.Run(d)
	return coll, w
}

// TestTraceInvariantsCompliantWorld: a by-the-book two-pair hotspot must
// produce a violation-free trace.
func TestTraceInvariantsCompliantWorld(t *testing.T) {
	coll, _ := runTraced(t, PairsConfig{
		Config:    Config{Seed: 11, UseRTSCTS: true},
		N:         2,
		Transport: UDP,
	}, 2*sim.Second)
	if n := coll.ViolationCount(); n != 0 {
		t.Fatalf("compliant world: %d violations:\n%v", n, coll.Violations())
	}
}

// TestTraceInvariantsNAVInflationWorld: the fig1 attack — a receiver
// inflating the NAV in its CTS/ACK — silences bystanders without breaking
// any DCF access rule. The checker must stay clean (the attacker bends
// durations, not access timing) while the trace shows the bystanders'
// NAV-blocked intervals, the observable the paper's Figure 1 plots.
func TestTraceInvariantsNAVInflationWorld(t *testing.T) {
	var greedyID int
	coll, w := runTraced(t, PairsConfig{
		Config:    Config{Seed: 12, UseRTSCTS: true},
		N:         2,
		Transport: UDP,
		ReceiverOpts: func(w *World, i int) StationOpts {
			if i != 0 {
				return StationOpts{}
			}
			return StationOpts{Policy: greedy.NewNAVInflation(
				w.Sched.RNG(), greedy.CTSAndACK, 10*sim.Millisecond, 100)}
		},
	}, 2*sim.Second)
	if n := coll.ViolationCount(); n != 0 {
		t.Fatalf("NAV-inflation world: %d violations:\n%v", n, coll.Violations())
	}
	gr, ok := w.Station(ReceiverName(0))
	if !ok {
		t.Fatal("greedy receiver missing")
	}
	greedyID = int(gr.ID)

	recs := coll.Recordings()
	if len(recs) != 1 {
		t.Fatalf("recordings = %d", len(recs))
	}
	bystanderBlocked := 0
	for _, e := range recs[0].Recorder.Events() {
		if e.Kind == trace.KindNAVBlockedStart && int(e.Station) != greedyID {
			bystanderBlocked++
		}
	}
	if bystanderBlocked == 0 {
		t.Error("no bystander NAVBLK-BEG events; the inflated NAV left no trace")
	}
}

// TestAttachTraceNames: AttachTrace must hand the recorder every station's
// name and the band parameters, so exports are self-describing.
func TestAttachTraceNames(t *testing.T) {
	w, err := BuildPairs(PairsConfig{
		Config:    Config{Seed: 3, UseRTSCTS: true},
		N:         1,
		Transport: UDP,
	})
	if err != nil {
		t.Fatal(err)
	}
	rec := trace.NewRecorder(16)
	w.AttachTrace(rec, rec)
	w.Run(100 * sim.Millisecond)
	meta := rec.Meta("x", 3)
	if meta.Timing != trace.TimingFromParams(w.Params) {
		t.Errorf("meta timing = %+v, want the world's band", meta.Timing)
	}
	names := map[string]bool{}
	for _, s := range meta.Stations {
		names[s.Name] = true
	}
	if !names[SenderName(0)] || !names[ReceiverName(0)] {
		t.Errorf("station names = %v, want %s and %s", meta.Stations, SenderName(0), ReceiverName(0))
	}
}
