package scenario

import (
	"math/rand"
	"testing"

	"greedy80211/internal/analytic"
	"greedy80211/internal/greedy"
	"greedy80211/internal/phys"
	"greedy80211/internal/sim"
	"greedy80211/internal/trace"
	"greedy80211/internal/transport"
)

// TestWorldInvariantsUnderFuzz builds randomized worlds — random band,
// transport, loss, topology, and misbehavior mix — and asserts the global
// invariants that must hold regardless of configuration:
//
//  1. conservation: a receiver never delivers more unique packets than
//     its sender emitted;
//  2. MAC accounting: enqueued = success + retry-drop + queue-drop +
//     still-queued (+ the one in service);
//  3. duplicates are never delivered to agents (unique counting);
//  4. contention windows sampled stay within [CWmin, CWmax];
//  5. the channel tap's decode count never exceeds transmissions × radios.
func TestWorldInvariantsUnderFuzz(t *testing.T) {
	for i := 0; i < 25; i++ {
		seed := int64(1000 + i*17)
		rng := rand.New(rand.NewSource(seed))
		runFuzzWorld(t, seed, rng)
	}
}

func runFuzzWorld(t *testing.T, seed int64, rng *rand.Rand) {
	t.Helper()
	bands := []phys.Band{phys.Band80211B, phys.Band80211A}
	transports := []Transport{UDP, TCP}
	cfg := Config{
		Seed:      seed,
		Band:      bands[rng.Intn(2)],
		UseRTSCTS: rng.Intn(2) == 0,
	}
	switch rng.Intn(3) {
	case 1:
		cfg.Error = phys.BERSpec([]float64{1e-5, 2e-4, 8e-4}[rng.Intn(3)])
	case 2:
		cfg.Error = phys.FERSpec([]float64{0.1, 0.4}[rng.Intn(2)])
	}
	cfg.ForceCapture = rng.Intn(2) == 0
	rec := trace.NewRecorder(8)
	cfg.Trace = rec

	n := 1 + rng.Intn(4)
	tr := transports[rng.Intn(2)]
	w, err := BuildPairs(PairsConfig{
		Config:    cfg,
		N:         n,
		Transport: tr,
		ReceiverOpts: func(w *World, i int) StationOpts {
			switch rng.Intn(4) {
			case 1:
				return StationOpts{Policy: greedy.NewNAVInflation(
					w.Sched.RNG(), greedy.CTSAndACK,
					sim.Time(1+rng.Intn(30))*sim.Millisecond,
					float64(rng.Intn(101)))}
			case 2:
				return StationOpts{Policy: greedy.NewACKSpoofer(
					w.Sched.RNG(), float64(rng.Intn(101)))}
			case 3:
				return StationOpts{Policy: greedy.NewFakeACKer(
					w.Sched.RNG(), float64(rng.Intn(101)))}
			default:
				return StationOpts{}
			}
		},
	})
	if err != nil {
		t.Fatalf("seed %d: %v", seed, err)
	}
	const d = 2 * sim.Second
	w.Run(d)

	var totalTx, totalDecoded int64
	for i := 0; i < n; i++ {
		snd, _ := w.Station(SenderName(i))
		rcv, _ := w.Station(ReceiverName(i))
		fl, _ := w.Flow(i + 1)

		// (1) conservation per flow.
		var sent int64
		switch tr {
		case UDP:
			sent = fl.CBR.Offered()
		case TCP:
			sent = fl.TCPSend.SegmentsSent
		}
		if got := fl.Stats().UniquePackets; got > sent {
			t.Errorf("seed %d flow %d: delivered %d unique > sent %d", seed, i+1, got, sent)
		}

		for _, st := range []*Station{snd, rcv} {
			c := st.DCF.Counters()
			// (2) MAC MSDU accounting (±1 for the frame in service).
			accounted := c.MSDUSuccess + c.MSDURetryDrop + c.MSDUQueueDrop +
				int64(st.DCF.QueueLen())
			if c.MSDUEnqueued < accounted || c.MSDUEnqueued > accounted+1 {
				t.Errorf("seed %d %s: enqueued %d vs accounted %d",
					seed, st.Name, c.MSDUEnqueued, accounted)
			}
			// (4) CW bounds.
			if c.CWSamples > 0 {
				avg := c.AvgCW()
				if avg < float64(w.Params.CWMin) || avg > float64(w.Params.CWMax) {
					t.Errorf("seed %d %s: avg CW %.1f outside [%d,%d]",
						seed, st.Name, avg, w.Params.CWMin, w.Params.CWMax)
				}
				for cw := range c.CWHist {
					if cw < w.Params.CWMin || cw > w.Params.CWMax {
						t.Errorf("seed %d %s: sampled CW %d out of range", seed, st.Name, cw)
					}
				}
			}
			// (3) receivers deliver at most one copy per (src, seq):
			// DataDelivered counts non-duplicates; the duplicate counter
			// absorbs the rest.
			if c.DataDelivered < 0 || c.DataDuplicates < 0 {
				t.Errorf("seed %d %s: negative rx counters", seed, st.Name)
			}
		}
	}
	st := rec.Stats()
	for _, v := range st.TxCount {
		totalTx += v
	}
	totalDecoded = st.Decoded + st.Corrupted
	// (5) each transmission is heard at most once per other radio.
	if maxRx := totalTx * int64(2*n-1); totalDecoded > maxRx {
		t.Errorf("seed %d: %d receptions exceed %d tx × %d radios",
			seed, totalDecoded, totalTx, 2*n-1)
	}
	if totalTx == 0 {
		t.Errorf("seed %d: world carried no traffic", seed)
	}
}

// TestGoodputNeverExceedsChannelCapacity asserts the physical bound: the
// sum of all delivered application bytes cannot exceed what the data rate
// could carry in the elapsed time.
func TestGoodputNeverExceedsChannelCapacity(t *testing.T) {
	for _, seed := range []int64{1, 2, 3} {
		w, err := BuildPairs(PairsConfig{
			Config:    Config{Seed: seed, UseRTSCTS: true},
			N:         3,
			Transport: UDP,
		})
		if err != nil {
			t.Fatal(err)
		}
		const d = 2 * sim.Second
		w.Run(d)
		var total float64
		for _, fl := range w.Flows() {
			total += fl.GoodputMbps(d)
		}
		if total > 11.0 {
			t.Errorf("seed %d: aggregate goodput %.2f Mbps exceeds the 11 Mbps PHY", seed, total)
		}
		// With protocol overhead the practical ceiling is ≈4 Mbps.
		if total > 4.5 {
			t.Errorf("seed %d: aggregate %.2f Mbps above the DCF ceiling", seed, total)
		}
	}
}

// TestSaturationModelMatchesSimulator cross-validates the Bianchi-style
// model (analytic.Saturation) against measured per-flow goodput for
// several network sizes — the same model-vs-simulation methodology as the
// paper's Fig 3.
func TestSaturationModelMatchesSimulator(t *testing.T) {
	if testing.Short() {
		t.Skip("model cross-validation skipped in -short mode")
	}
	for _, n := range []int{1, 2, 4, 8} {
		res, err := analytic.Saturation(analytic.SaturationConfig{
			Stations:      n,
			Params:        phys.Params80211B(),
			PayloadBytes:  1024,
			OverheadBytes: 28,
			UseRTSCTS:     true,
		})
		if err != nil {
			t.Fatal(err)
		}
		w, err := BuildPairs(PairsConfig{
			Config:    Config{Seed: int64(100 + n), UseRTSCTS: true},
			N:         n,
			Transport: UDP,
		})
		if err != nil {
			t.Fatal(err)
		}
		const d = 4 * sim.Second
		w.Run(d)
		var total float64
		for _, fl := range w.Flows() {
			total += fl.GoodputMbps(d)
		}
		measured := total / float64(n)
		predicted := res.PerStationBps / 1e6
		ratio := measured / predicted
		if ratio < 0.85 || ratio > 1.2 {
			t.Errorf("n=%d: measured %.2f vs model %.2f Mbps per flow (ratio %.2f)",
				n, measured, predicted, ratio)
		}
	}
}

// TestDeterminism: identical seeds must give byte-identical outcomes.
func TestDeterminism(t *testing.T) {
	build := func() *World {
		w, err := BuildPairs(PairsConfig{
			Config:    Config{Seed: 77, UseRTSCTS: true, Error: phys.BERSpec(2e-4)},
			N:         2,
			Transport: TCP,
			ReceiverOpts: func(w *World, i int) StationOpts {
				if i != 1 {
					return StationOpts{}
				}
				return StationOpts{Policy: greedy.NewACKSpoofer(w.Sched.RNG(), 100)}
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		return w
	}
	a, b := build(), build()
	a.Run(3 * sim.Second)
	b.Run(3 * sim.Second)
	for id := 1; id <= 2; id++ {
		fa, _ := a.Flow(id)
		fb, _ := b.Flow(id)
		if fa.Stats() != fb.Stats() {
			t.Errorf("flow %d stats diverged across identical runs: %+v vs %+v",
				id, fa.Stats(), fb.Stats())
		}
	}
	for _, name := range []string{SenderName(0), SenderName(1), ReceiverName(0), ReceiverName(1)} {
		sa, _ := a.Station(name)
		sb, _ := b.Station(name)
		ca, cb := sa.DCF.Counters(), sb.DCF.Counters()
		if ca.DataSent != cb.DataSent || ca.ACKTimeouts != cb.ACKTimeouts ||
			ca.MSDUSuccess != cb.MSDUSuccess {
			t.Errorf("station %s counters diverged", name)
		}
	}
	if a.Sched.Executed() != b.Sched.Executed() {
		t.Errorf("event counts diverged: %d vs %d", a.Sched.Executed(), b.Sched.Executed())
	}
}

// TestMACQueueIsFIFO: packets to one destination are delivered in the
// order they were enqueued.
func TestMACQueueIsFIFO(t *testing.T) {
	w, err := NewWorld(Config{Seed: 5, UseRTSCTS: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.AddStation("rx", phys.Position{X: 5}, StationOpts{}); err != nil {
		t.Fatal(err)
	}
	if _, err := w.AddStation("tx", phys.Position{}, StationOpts{}); err != nil {
		t.Fatal(err)
	}
	tx, _ := w.Station("tx")
	rx, _ := w.Station("rx")
	tx.Node.SetRoute(1, tx.Node.WirelessTo(rx.ID))
	var got []int
	rx.Node.AddAgent(1, orderAgent{&got})
	out := tx.Node.OutputFor(1)
	for i := 0; i < 20; i++ {
		i := i
		w.Sched.Schedule(sim.Time(i)*sim.Microsecond, func() {
			out.Output(&transport.Packet{Flow: 1, Seq: i, PayloadBytes: 500, WireBytes: 528})
		})
	}
	w.Sched.RunUntil(sim.Second)
	if len(got) != 20 {
		t.Fatalf("delivered %d of 20", len(got))
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("out of order delivery: %v", got)
		}
	}
}

// orderAgent records the arrival order of sequence numbers.
type orderAgent struct{ got *[]int }

func (a orderAgent) Receive(p *transport.Packet) { *a.got = append(*a.got, p.Seq) }
