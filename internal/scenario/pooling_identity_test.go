package scenario

import (
	"bytes"
	"fmt"
	"testing"

	"greedy80211/internal/metrics"
	"greedy80211/internal/sim"
	"greedy80211/internal/trace"
)

// Pooling is a pure allocation strategy: a pooled world and an unpooled
// (DisablePooling) world built from the same config must be
// indistinguishable in every output — flow goodputs, telemetry, and the
// full flight-recorder stream byte for byte. This is the regression
// gate for the hot-path arenas: any pooling bug that perturbs RNG
// draws, event ordering, or frame/packet contents shows up here.
func TestPoolingByteIdentity(t *testing.T) {
	type worldCase struct {
		name  string
		build func(cfg Config) (*World, error)
	}
	cases := []worldCase{
		{"udp-rtscts", func(cfg Config) (*World, error) {
			cfg.UseRTSCTS = true
			return BuildPairs(PairsConfig{Config: cfg, N: 2, Transport: UDP})
		}},
		{"tcp", func(cfg Config) (*World, error) {
			return BuildPairs(PairsConfig{Config: cfg, N: 2, Transport: TCP})
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			run := func(disable bool) ([]byte, string) {
				cfg := Config{Seed: 5, DisablePooling: disable}
				w, err := tc.build(cfg)
				if err != nil {
					t.Fatal(err)
				}
				rec := trace.NewRecorder(0)
				w.AttachTrace(rec, rec)
				w.Run(2 * sim.Second)
				var buf bytes.Buffer
				if err := trace.WriteJSONL(&buf, rec.Meta("id", 5), rec.Events()); err != nil {
					t.Fatal(err)
				}
				var rest bytes.Buffer
				for _, fl := range w.Flows() {
					fmt.Fprintf(&rest, "%d:%.9f\n", fl.ID, fl.GoodputMbps(2*sim.Second))
				}
				if err := metrics.EncodeSnapshots(&rest, []*metrics.Snapshot{w.MetricsSnapshot()}); err != nil {
					t.Fatal(err)
				}
				return buf.Bytes(), rest.String()
			}
			pooledTrace, pooledRest := run(false)
			plainTrace, plainRest := run(true)
			if !bytes.Equal(pooledTrace, plainTrace) {
				t.Errorf("trace exports differ: pooled %d bytes, unpooled %d bytes",
					len(pooledTrace), len(plainTrace))
			}
			if len(pooledTrace) == 0 {
				t.Error("empty trace export")
			}
			if pooledRest != plainRest {
				t.Errorf("flows/metrics differ:\n--- pooled ---\n%s\n--- unpooled ---\n%s",
					pooledRest, plainRest)
			}
		})
	}
}
