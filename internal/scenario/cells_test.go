package scenario

import (
	"encoding/json"
	"testing"

	"greedy80211/internal/phys"
	"greedy80211/internal/sim"
)

func TestTopologySpecJSONRoundTrip(t *testing.T) {
	in := TopologySpec{
		NumCells:        4,
		GridCols:        2,
		GridSpacing:     80,
		ChannelPlan:     []int{1, 6, 11},
		DefaultStations: 3,
		DefaultUplink:   1,
		Cells: []CellSpec{{
			Channel:  6,
			Stations: 5,
			StationSpecs: []StationSpec{
				{}, {Policy: PolicySpec{Name: PolicyFakeACKs, GreedyPercent: 80}},
			},
		}},
	}
	raw, err := json.Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	var out TopologySpec
	if err := json.Unmarshal(raw, &out); err != nil {
		t.Fatal(err)
	}
	if out.NumCells != 4 || len(out.ChannelPlan) != 3 || len(out.Cells) != 1 ||
		out.Cells[0].StationSpecs[1].Policy.Name != PolicyFakeACKs {
		t.Fatalf("round trip = %+v (raw %s)", out, raw)
	}
	if err := out.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestTopologySpecValidate(t *testing.T) {
	for name, top := range map[string]TopologySpec{
		"empty":          {},
		"bad channel":    {NumCells: 2, ChannelPlan: []int{0}},
		"uplink exceeds": {Cells: []CellSpec{{Stations: 2, Uplink: 3}}},
		"excess specs":   {Cells: []CellSpec{{Stations: 1, StationSpecs: []StationSpec{{}, {}}}}},
		"negative":       {NumCells: 2, GridSpacing: -1},
	} {
		t.Run(name, func(t *testing.T) {
			if err := top.Validate(); err == nil {
				t.Fatalf("Validate accepted %+v", top)
			}
		})
	}
}

// TestBuildCellsStructure: a 2×2 grid with a 2-channel plan produces the
// right stations, channels, flows, and per-cell uplink/downlink mix.
func TestBuildCellsStructure(t *testing.T) {
	w, err := BuildCells(CellsConfig{
		Config: Config{Seed: 1},
		Topology: TopologySpec{
			NumCells:        4,
			GridCols:        2,
			ChannelPlan:     []int{1, 6},
			DefaultStations: 3,
			DefaultUplink:   1,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := len(w.Flows()); got != 12 {
		t.Fatalf("flows = %d, want 12", got)
	}
	for c := 0; c < 4; c++ {
		wantCh := []int{1, 6}[c%2]
		ap, ok := w.Station(CellAPName(c))
		if !ok {
			t.Fatalf("cell %d AP missing", c)
		}
		if ch, _ := w.Medium.Channel(ap.ID); ch != wantCh {
			t.Fatalf("cell %d AP on channel %d, want %d", c, ch, wantCh)
		}
		for s := 0; s < 3; s++ {
			st, ok := w.Station(CellStationName(c, s))
			if !ok {
				t.Fatalf("cell %d station %d missing", c, s)
			}
			if ch, _ := w.Medium.Channel(st.ID); ch != wantCh {
				t.Fatalf("cell %d station %d on channel %d, want %d", c, s, ch, wantCh)
			}
		}
	}
	// Cell 0's flows: station 0 uplink, stations 1-2 downlink.
	fl := w.Flows()
	if fl[0].From != CellStationName(0, 0) || fl[0].To != CellAPName(0) {
		t.Fatalf("flow 1 = %s→%s, want uplink", fl[0].From, fl[0].To)
	}
	if fl[1].From != CellAPName(0) || fl[1].To != CellStationName(0, 1) {
		t.Fatalf("flow 2 = %s→%s, want downlink", fl[1].From, fl[1].To)
	}
}

// TestBuildCellsChannelIsolation: two co-located cells on different
// channels each match a lone cell's goodput exactly — off-channel radios
// neither interfere nor even cost delivery events.
func TestBuildCellsChannelIsolation(t *testing.T) {
	center := phys.Position{X: 0, Y: 0}
	run := func(top TopologySpec) []float64 {
		t.Helper()
		w, err := BuildCells(CellsConfig{
			Config:   Config{Seed: 5},
			Topology: top,
		})
		if err != nil {
			t.Fatal(err)
		}
		w.Run(200 * sim.Millisecond)
		var out []float64
		for _, fl := range w.Flows() {
			out = append(out, fl.GoodputMbps(200*sim.Millisecond))
		}
		return out
	}
	lone := run(TopologySpec{Cells: []CellSpec{
		{Channel: 1, Stations: 2, Center: &center},
	}})
	both := run(TopologySpec{Cells: []CellSpec{
		{Channel: 1, Stations: 2, Center: &center},
		{Channel: 6, Stations: 2, Center: &center},
	}})
	for i := range lone {
		if lone[i] != both[i] {
			t.Fatalf("flow %d: lone-cell goodput %v != co-located off-channel %v", i+1, lone[i], both[i])
		}
	}
	if lone[0] == 0 {
		t.Fatal("lone cell carried no traffic; the comparison is vacuous")
	}
}

// TestLargeMultiBSSWorld: the acceptance-scale world — 50 APs and 1000
// stations — builds and runs to completion. GRC-evaluation propagation
// (55 m / 99 m) with a 3-channel plan keeps each BSS's neighbor set
// small, which is exactly the regime neighbor-scoped delivery targets.
func TestLargeMultiBSSWorld(t *testing.T) {
	if testing.Short() {
		t.Skip("large world in -short mode")
	}
	prop := phys.GRCPropagation()
	w, err := BuildCells(CellsConfig{
		Config: Config{Seed: 7, Propagation: &prop},
		Topology: TopologySpec{
			NumCells:        50,
			ChannelPlan:     []int{1, 6, 11},
			DefaultStations: 20,
			DefaultUplink:   5,
		},
		CBRRateBps: 1e5,
	})
	if err != nil {
		t.Fatal(err)
	}
	w.Run(100 * sim.Millisecond)
	if got := len(w.Flows()); got != 1000 {
		t.Fatalf("flows = %d, want 1000", got)
	}
	var total float64
	for _, fl := range w.Flows() {
		total += fl.GoodputMbps(100 * sim.Millisecond)
	}
	if total == 0 {
		t.Fatal("1000-station world carried no traffic")
	}
	// Neighbor sets stay cell-sized: a station hears its own BSS (21
	// radios) and possibly a touching cell, never the whole 1050-radio
	// world.
	ap, _ := w.Station(CellAPName(0))
	if n := w.Medium.NeighborCount(ap.ID); n >= 100 {
		t.Fatalf("AP1 has %d neighbors; scoping failed to clip the world", n)
	}
}
