package scenario

import (
	"fmt"
	"strings"
	"sync"

	"greedy80211/internal/pool"
)

// PoolStats is the observability snapshot of every recycler a world
// runs on: the frame and packet pools, the medium's arrival arena, and
// the scheduler's event slab. Chunks-grown counts expose steady-state
// growth regressions; live counts at end-of-run expose leaks beyond the
// documented leak-to-GC cases (retry-dropped MSDUs, traffic truncated by
// the horizon).
type PoolStats struct {
	Frames   pool.Stats `json:"frames"`
	Packets  pool.Stats `json:"packets"`
	Arrivals pool.Stats `json:"arrivals"`
	Events   pool.Stats `json:"events"`
}

// PoolStats reports the world's current pool occupancy. The frame and
// packet entries are zero when the world was built with DisablePooling.
func (w *World) PoolStats() PoolStats {
	return PoolStats{
		Frames:   w.frames.Stats(),
		Packets:  w.packets.Stats(),
		Arrivals: w.Medium.ArrivalStats(),
		Events:   w.Sched.Stats(),
	}
}

// PoolReport aggregates PoolStats across many worlds (seeds, artifacts)
// for the -metrics observability surface. It is safe for concurrent use;
// parallel runners fold worlds in as they finish. Pool telemetry is
// reported on stdout only — it never enters metrics sidecars or result
// JSON, which must stay byte-identical with pooling on, off, or absent.
type PoolReport struct {
	mu     sync.Mutex
	worlds int
	sum    PoolStats
	max    PoolStats
}

// Add folds one world's stats into the report.
func (r *PoolReport) Add(s PoolStats) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.worlds++
	addStats(&r.sum.Frames, &r.max.Frames, s.Frames)
	addStats(&r.sum.Packets, &r.max.Packets, s.Packets)
	addStats(&r.sum.Arrivals, &r.max.Arrivals, s.Arrivals)
	addStats(&r.sum.Events, &r.max.Events, s.Events)
}

func addStats(sum, max *pool.Stats, s pool.Stats) {
	sum.Chunks += s.Chunks
	sum.ChunkSize = s.ChunkSize
	sum.Live += s.Live
	sum.Free += s.Free
	sum.Gets += s.Gets
	sum.Puts += s.Puts
	if s.Chunks > max.Chunks {
		max.Chunks = s.Chunks
	}
	if s.Live > max.Live {
		max.Live = s.Live
	}
}

// Worlds reports how many worlds have been folded in.
func (r *PoolReport) Worlds() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.worlds
}

// String renders a one-line-per-pool summary.
func (r *PoolReport) String() string {
	r.mu.Lock()
	defer r.mu.Unlock()
	var b strings.Builder
	fmt.Fprintf(&b, "pool stats over %d worlds:\n", r.worlds)
	row := func(name string, sum, max pool.Stats) {
		fmt.Fprintf(&b, "  %-8s gets=%d puts=%d chunks=%d (max %d/world, %d objs) leaked=%d\n",
			name, sum.Gets, sum.Puts, sum.Chunks, max.Chunks, max.Chunks*sum.ChunkSize, sum.Live)
	}
	row("frames", r.sum.Frames, r.max.Frames)
	row("packets", r.sum.Packets, r.max.Packets)
	row("arrivals", r.sum.Arrivals, r.max.Arrivals)
	row("events", r.sum.Events, r.max.Events)
	return strings.TrimRight(b.String(), "\n")
}
