package scenario

import (
	"testing"

	"greedy80211/internal/detect"
	"greedy80211/internal/greedy"
	"greedy80211/internal/mac"
	"greedy80211/internal/phys"
	"greedy80211/internal/sim"
	"greedy80211/internal/trace"
	"greedy80211/internal/transport"
	"greedy80211/internal/wireline"
)

func TestWorldValidation(t *testing.T) {
	if _, err := NewWorld(Config{Band: phys.Band(9)}); err == nil {
		t.Error("unknown band accepted")
	}
	w, err := NewWorld(Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.AddStation("a", phys.Position{}, StationOpts{}); err != nil {
		t.Fatal(err)
	}
	if _, err := w.AddStation("a", phys.Position{}, StationOpts{}); err == nil {
		t.Error("duplicate station accepted")
	}
	if _, err := w.AddUDPFlow(1, "a", "nope", 1e6, 1024); err == nil {
		t.Error("unknown receiver accepted")
	}
	if _, err := w.AddStation("bad", phys.Position{}, StationOpts{
		SpoofEmulationVictims: []string{"ghost"},
	}); err == nil {
		t.Error("unknown emulation victim accepted")
	}
}

func TestBuildPairsUDPFairBaseline(t *testing.T) {
	w, err := BuildPairs(PairsConfig{
		Config:    Config{Seed: 1, UseRTSCTS: true},
		N:         2,
		Transport: UDP,
	})
	if err != nil {
		t.Fatal(err)
	}
	w.Run(4 * sim.Second)
	f1, _ := w.Flow(1)
	f2, _ := w.Flow(2)
	g1, g2 := f1.GoodputMbps(4*sim.Second), f2.GoodputMbps(4*sim.Second)
	if g1 < 1.0 || g2 < 1.0 {
		t.Errorf("baseline goodputs %.2f / %.2f Mbps, want ≈1.6 each (Fig 1 at α=0)", g1, g2)
	}
	if ratio := g1 / g2; ratio < 0.8 || ratio > 1.25 {
		t.Errorf("baseline unfair: %.2f vs %.2f", g1, g2)
	}
}

// Fig 1's headline: a greedy receiver inflating CTS NAV starves the
// competing UDP flow even at modest inflation.
func TestNAVInflationUDPStarvation(t *testing.T) {
	w, err := BuildPairs(PairsConfig{
		Config:    Config{Seed: 3, UseRTSCTS: true},
		N:         2,
		Transport: UDP,
		ReceiverOpts: func(w *World, i int) StationOpts {
			if i != 1 {
				return StationOpts{}
			}
			return StationOpts{Policy: greedy.NewNAVInflation(
				w.Sched.RNG(), greedy.CTSAndACK, 5*sim.Millisecond, 100)}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	w.Run(4 * sim.Second)
	nr, _ := w.Flow(1)
	gr, _ := w.Flow(2)
	gN, gG := nr.GoodputMbps(4*sim.Second), gr.GoodputMbps(4*sim.Second)
	if gG < 2.5 {
		t.Errorf("greedy goodput %.2f Mbps, want near channel capacity", gG)
	}
	if gN > gG/10 {
		t.Errorf("normal receiver got %.2f vs greedy %.2f; want starvation", gN, gG)
	}
}

// Fig 4(a) shape: under TCP, CTS NAV inflation gives the greedy receiver
// more goodput, growing with the inflation amount.
func TestNAVInflationTCPGain(t *testing.T) {
	run := func(extra sim.Time) (normal, greedyG float64) {
		w, err := BuildPairs(PairsConfig{
			Config:    Config{Seed: 5, UseRTSCTS: true},
			N:         2,
			Transport: TCP,
			ReceiverOpts: func(w *World, i int) StationOpts {
				if i != 1 {
					return StationOpts{}
				}
				return StationOpts{Policy: greedy.NewNAVInflation(
					w.Sched.RNG(), greedy.CTSOnly, extra, 100)}
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		w.Run(4 * sim.Second)
		f1, _ := w.Flow(1)
		f2, _ := w.Flow(2)
		return f1.GoodputMbps(4 * sim.Second), f2.GoodputMbps(4 * sim.Second)
	}
	n5, g5 := run(5 * sim.Millisecond)
	if g5 <= n5 {
		t.Errorf("5ms CTS inflation: greedy %.2f ≤ normal %.2f", g5, n5)
	}
	n31, g31 := run(31 * sim.Millisecond)
	if g31 <= n31*3 {
		t.Errorf("31ms CTS inflation: greedy %.2f vs normal %.2f, want dominance", g31, n31)
	}
}

// Fig 11 shape: ACK spoofing under loss hurts the normal TCP flow.
func TestSpoofingDegradesNormalTCP(t *testing.T) {
	build := func(seed int64, spoof bool) *World {
		w, err := BuildPairs(PairsConfig{
			Config: Config{
				Seed:         seed,
				UseRTSCTS:    true,
				DefaultBER:   2e-4,
				ForceCapture: true,
			},
			N:         2,
			Transport: TCP,
			ReceiverOpts: func(w *World, i int) StationOpts {
				if !spoof || i != 1 {
					return StationOpts{}
				}
				r1, _ := w.Station(ReceiverName(0))
				return StationOpts{Policy: greedy.NewACKSpoofer(w.Sched.RNG(), 100, r1.ID)}
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		return w
	}
	const d = 6 * sim.Second
	base := build(7, false)
	base.Run(d)
	b1, _ := base.Flow(1)
	baseline := b1.GoodputMbps(d)

	att := build(7, true)
	att.Run(d)
	a1, _ := att.Flow(1)
	a2, _ := att.Flow(2)
	victim, attacker := a1.GoodputMbps(d), a2.GoodputMbps(d)

	if victim > baseline*0.7 {
		t.Errorf("victim %.2f vs baseline %.2f Mbps: spoofing should hurt", victim, baseline)
	}
	if attacker <= victim {
		t.Errorf("attacker %.2f ≤ victim %.2f: spoofing should pay off", attacker, victim)
	}
	// The spoofer must actually have forged ACKs.
	gr, _ := att.Station(ReceiverName(1))
	if gr.DCF.Counters().SpoofedACKsSent == 0 {
		t.Error("no spoofed ACKs were transmitted")
	}
}

// Fig 18 / Table IV shape: fake ACKs under hidden-terminal collisions give
// the greedy receiver goodput and keep its sender's CW at the minimum.
func TestFakeACKHiddenTerminals(t *testing.T) {
	w, err := BuildHiddenPairs(HiddenPairsConfig{
		Config: Config{Seed: 9},
		ReceiverOpts: func(w *World, i int) StationOpts {
			if i != 1 {
				return StationOpts{}
			}
			return StationOpts{Policy: greedy.NewFakeACKer(w.Sched.RNG(), 100)}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	w.Run(4 * sim.Second)
	f1, _ := w.Flow(1)
	f2, _ := w.Flow(2)
	gN, gG := f1.GoodputMbps(4*sim.Second), f2.GoodputMbps(4*sim.Second)
	if gG <= gN {
		t.Errorf("fake-ACK receiver %.2f ≤ normal %.2f under hidden terminals", gG, gN)
	}
	s1, _ := w.Station(SenderName(0))
	s2, _ := w.Station(SenderName(1))
	cwN, cwG := s1.DCF.Counters().AvgCW(), s2.DCF.Counters().AvgCW()
	if cwG >= cwN {
		t.Errorf("greedy sender CW %.0f ≥ normal %.0f; fake ACKs should pin it low", cwG, cwN)
	}
	gr, _ := w.Station(ReceiverName(1))
	if gr.DCF.Counters().FakeACKsSent == 0 {
		t.Error("no fake ACKs were transmitted")
	}
}

// Fig 23 shape: GRC's NAV guard restores fairness against CTS inflation.
func TestGRCDefeatsNAVInflation(t *testing.T) {
	grcCfg := detect.DefaultConfig()
	build := func(withGRC bool) *World {
		w, err := BuildPairs(PairsConfig{
			Config:    Config{Seed: 11, UseRTSCTS: true},
			N:         2,
			Transport: UDP,
			ReceiverOpts: func(w *World, i int) StationOpts {
				opts := StationOpts{}
				if withGRC {
					opts.GRC = &grcCfg
				}
				if i == 1 {
					opts.Policy = greedy.NewNAVInflation(
						w.Sched.RNG(), greedy.CTSOnly, 31*sim.Millisecond, 100)
				}
				return opts
			},
			SenderOpts: func(w *World, i int) StationOpts {
				if !withGRC {
					return StationOpts{}
				}
				return StationOpts{GRC: &grcCfg}
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		return w
	}
	const d = 4 * sim.Second
	unprot := build(false)
	unprot.Run(d)
	u1, _ := unprot.Flow(1)
	if u1.GoodputMbps(d) > 0.2 {
		t.Fatalf("attack ineffective without GRC: normal got %.2f Mbps", u1.GoodputMbps(d))
	}

	prot := build(true)
	prot.Run(d)
	p1, _ := prot.Flow(1)
	p2, _ := prot.Flow(2)
	gN, gG := p1.GoodputMbps(d), p2.GoodputMbps(d)
	if gN < gG*0.6 {
		t.Errorf("GRC did not restore fairness: %.2f vs %.2f", gN, gG)
	}
	ns, _ := prot.Station(SenderName(0))
	if ns.GRC.Stats().NAVClamped == 0 {
		t.Error("GRC never clamped a NAV")
	}
}

// Fig 24 shape: GRC's RSSI check recovers from ACK spoofing.
func TestGRCDefeatsSpoofing(t *testing.T) {
	grcCfg := detect.DefaultConfig()
	build := func(withGRC bool) *World {
		w, err := NewWorld(Config{
			Seed: 13, UseRTSCTS: true, Error: phys.BERSpec(4.4e-4), ForceCapture: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		// R2 (the spoofer) sits far from S1 so its forged ACKs arrive
		// ≥10 dB below R1's — the regime where GRC can safely ignore them.
		mustAdd := func(name string, pos phys.Position, opts StationOpts) {
			t.Helper()
			if _, err := w.AddStation(name, pos, opts); err != nil {
				t.Fatal(err)
			}
		}
		mustAdd("R1", phys.Position{X: 5}, StationOpts{})
		var spoofOpts StationOpts
		r1, _ := w.Station("R1")
		spoofOpts.Policy = greedy.NewACKSpoofer(w.Sched.RNG(), 100, r1.ID)
		mustAdd("R2", phys.Position{X: 5, Y: 30}, spoofOpts)
		senderOpts := StationOpts{}
		if withGRC {
			senderOpts.GRC = &grcCfg
		}
		mustAdd("S1", phys.Position{}, senderOpts)
		mustAdd("S2", phys.Position{Y: 30}, StationOpts{})
		if _, err := w.AddTCPFlow(1, "S1", "R1", transport.DefaultTCPConfig(1)); err != nil {
			t.Fatal(err)
		}
		if _, err := w.AddTCPFlow(2, "S2", "R2", transport.DefaultTCPConfig(2)); err != nil {
			t.Fatal(err)
		}
		return w
	}
	const d = 6 * sim.Second
	unprot := build(false)
	unprot.Run(d)
	prot := build(true)
	prot.Run(d)

	u1, _ := unprot.Flow(1)
	p1, _ := prot.Flow(1)
	if p1.GoodputMbps(d) < u1.GoodputMbps(d)*1.2 {
		t.Errorf("GRC victim goodput %.2f vs unprotected %.2f: recovery missing",
			p1.GoodputMbps(d), u1.GoodputMbps(d))
	}
	s1, _ := prot.Station("S1")
	st := s1.GRC.Stats()
	if st.SpoofIgnored == 0 {
		t.Errorf("GRC never ignored a spoofed ACK: %+v", st)
	}
}

// Section VII-B's mobile-client fallback: the cross-layer detector flags
// spoofing by correlating MAC-acknowledged TCP segments with later TCP
// retransmissions, without any RSSI assumption.
func TestCrossLayerDetectsSpoofing(t *testing.T) {
	run := func(spoof bool) *detect.CrossLayer {
		w, err := BuildPairs(PairsConfig{
			Config: Config{
				Seed: 31, UseRTSCTS: true, Error: phys.BERSpec(2e-4), ForceCapture: true,
			},
			N:         2,
			Transport: TCP,
			ReceiverOpts: func(w *World, i int) StationOpts {
				if !spoof || i != 1 {
					return StationOpts{}
				}
				r1, _ := w.Station(ReceiverName(0))
				return StationOpts{Policy: greedy.NewACKSpoofer(w.Sched.RNG(), 100, r1.ID)}
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		// Wire the detector at the victim's sender.
		xl := detect.NewCrossLayer(512, 12)
		s1, _ := w.Station(SenderName(0))
		s1.Node.TxDoneHook = func(f *mac.Frame, ok bool) {
			p, okCast := f.Payload.(*transport.Packet)
			if ok && okCast && !p.IsACK {
				xl.OnMACAcked(p.Flow, p.Seq)
			}
		}
		f1, _ := w.Flow(1)
		f1.TCPSend.RetransmitHook = func(seq int) { xl.OnTCPRetransmit(1, seq) }
		w.Run(15 * sim.Second)
		return xl
	}
	honest := run(false)
	if honest.Detected() {
		t.Errorf("cross-layer flagged an honest network (%d anomalies)", honest.Anomalies)
	}
	attacked := run(true)
	if !attacked.Detected() {
		t.Errorf("cross-layer missed the spoofing attack (%d anomalies)", attacked.Anomalies)
	}
	if attacked.Anomalies < 3*honest.Anomalies+3 {
		t.Errorf("weak separation: %d vs %d anomalies", attacked.Anomalies, honest.Anomalies)
	}
}

// Remote-sender wiring (Fig 15 substrate): a wired host reaches a wireless
// receiver through the AP bridge, and TCP ACKs flow back.
func TestRemoteSenderBridge(t *testing.T) {
	w, err := NewWorld(Config{Seed: 15, UseRTSCTS: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.AddStation("AP", phys.Position{}, StationOpts{}); err != nil {
		t.Fatal(err)
	}
	if _, err := w.AddStation("R1", phys.Position{X: 5}, StationOpts{}); err != nil {
		t.Fatal(err)
	}
	if _, err := w.AddWiredHost("H1"); err != nil {
		t.Fatal(err)
	}
	if err := w.ConnectWired("H1", "AP", wireline.Config{Delay: 20 * sim.Millisecond, RateBps: 100e6}); err != nil {
		t.Fatal(err)
	}
	fl, err := w.AddTCPFlow(1, "H1", "R1", transport.DefaultTCPConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	w.Run(4 * sim.Second)
	if fl.GoodputMbps(4*sim.Second) < 1.0 {
		t.Errorf("remote TCP goodput %.2f Mbps, want >1", fl.GoodputMbps(4*sim.Second))
	}
	// RTT should reflect the 40 ms round trip.
	if srtt := fl.TCPSend.SRTT(); srtt < 40*sim.Millisecond {
		t.Errorf("SRTT %v < wired RTT", srtt)
	}
}

func TestConnectWiredValidation(t *testing.T) {
	w, _ := NewWorld(Config{Seed: 1})
	_, _ = w.AddStation("AP", phys.Position{}, StationOpts{})
	_, _ = w.AddWiredHost("H")
	if err := w.ConnectWired("AP", "AP", wireline.Config{}); err == nil {
		t.Error("wireless station accepted as wired host")
	}
	if err := w.ConnectWired("H", "H", wireline.Config{}); err == nil {
		t.Error("wired host accepted as AP")
	}
	if err := w.ConnectWired("H", "AP", wireline.Config{}); err != nil {
		t.Fatal(err)
	}
	if err := w.ConnectWired("H", "AP", wireline.Config{}); err == nil {
		t.Error("double connection accepted")
	}
	// Flow through an unconnected host fails.
	w2, _ := NewWorld(Config{Seed: 1})
	_, _ = w2.AddWiredHost("H")
	_, _ = w2.AddStation("R", phys.Position{}, StationOpts{})
	if _, err := w2.AddTCPFlow(1, "H", "R", transport.DefaultTCPConfig(1)); err == nil {
		t.Error("flow through unconnected host accepted")
	}
}

func TestSharedAPHeadOfLineBlocking(t *testing.T) {
	w, err := BuildSharedAP(SharedAPConfig{
		Config:    Config{Seed: 17, UseRTSCTS: true},
		N:         2,
		Transport: UDP,
		ReceiverOpts: func(w *World, i int) StationOpts {
			if i != 1 {
				return StationOpts{}
			}
			return StationOpts{Policy: greedy.NewNAVInflation(
				w.Sched.RNG(), greedy.CTSOnly, 10*sim.Millisecond, 100)}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	w.Run(4 * sim.Second)
	f1, _ := w.Flow(1)
	f2, _ := w.Flow(2)
	g1, g2 := f1.GoodputMbps(4*sim.Second), f2.GoodputMbps(4*sim.Second)
	// Fig 10(c): with a shared sender under UDP the inflation mostly hurts
	// the shared queue — total goodput collapses and the greedy receiver's
	// residual gain is far below the ≥10× of the two-sender case. (ns-2
	// shows near-equality; our DCF drops the victim's head-of-line packet
	// after RTS retry exhaustion, leaving a modest gain — see
	// EXPERIMENTS.md.)
	total := g1 + g2
	if total > 2.5 {
		t.Errorf("shared-AP UDP total %.2f Mbps: inflation should hurt the shared queue", total)
	}
	if g2 > 4*g1 {
		t.Errorf("shared-AP UDP greedy %.2f vs normal %.2f: gain should stay modest", g2, g1)
	}
}

func TestTraceTapIntegration(t *testing.T) {
	rec := trace.NewRecorder(64)
	w, err := BuildPairs(PairsConfig{
		Config:    Config{Seed: 29, UseRTSCTS: true, Trace: rec},
		N:         2,
		Transport: UDP,
	})
	if err != nil {
		t.Fatal(err)
	}
	w.Run(sim.Second)

	st := rec.Stats()
	for _, ft := range []mac.FrameType{mac.FrameRTS, mac.FrameCTS, mac.FrameData, mac.FrameACK} {
		if st.TxCount[ft] == 0 {
			t.Errorf("trace counted no %v frames", ft)
		}
	}
	util := rec.Utilization(sim.Second)
	if util <= 0.3 || util > 1.5 {
		t.Errorf("saturated-channel utilization = %.2f", util)
	}
	if len(rec.Events()) != 64 {
		t.Errorf("ring retained %d events, want 64", len(rec.Events()))
	}
	// Two saturated senders should split airtime roughly evenly.
	s1, _ := w.Station(SenderName(0))
	s2, _ := w.Station(SenderName(1))
	a1 := st.AirtimePerStation[s1.ID]
	a2 := st.AirtimePerStation[s2.ID]
	if a1 == 0 || a2 == 0 {
		t.Fatal("missing per-station airtime")
	}
	ratio := float64(a1) / float64(a2)
	if ratio < 0.7 || ratio > 1.4 {
		t.Errorf("airtime split %v vs %v (ratio %.2f)", a1, a2, ratio)
	}
}

func TestMedianOverSeeds(t *testing.T) {
	got, err := MedianOverSeeds(3, 100, 2*sim.Second, func(seed int64) (*World, error) {
		return BuildPairs(PairsConfig{
			Config:    Config{Seed: seed, UseRTSCTS: true},
			N:         2,
			Transport: UDP,
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[1] <= 0 || got[2] <= 0 {
		t.Errorf("medians = %v", got)
	}
	if _, err := MedianOverSeeds(0, 0, sim.Second, nil); err == nil {
		t.Error("nSeeds 0 accepted")
	}
}

// Section VII-C end to end: active probing distinguishes a fake-ACKing
// receiver (application loss with a clean-looking MAC) from an honest one.
func TestFakeACKDetectionViaProbing(t *testing.T) {
	build := func(fake bool) (*World, *ProbeFlow) {
		w, err := BuildPairs(PairsConfig{
			// BER high enough that data frames (and probes) are lossy
			// while control frames mostly survive.
			Config:    Config{Seed: 23, UseRTSCTS: true, Error: phys.BERSpec(8e-4)},
			N:         1,
			Transport: UDP,
			// Keep the MAC queue unsaturated so probes are not
			// queue-dropped before they ever reach the air.
			CBRRateBps: 5e5,
			ReceiverOpts: func(w *World, i int) StationOpts {
				if !fake {
					return StationOpts{}
				}
				return StationOpts{Policy: greedy.NewFakeACKer(w.Sched.RNG(), 100)}
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		pf, err := w.AddProbeFlow(99, SenderName(0), ReceiverName(0), 20*sim.Millisecond)
		if err != nil {
			t.Fatal(err)
		}
		return w, pf
	}
	const d = 8 * sim.Second
	det := detect.NewFakeACKDetector(phys.Params80211B().LongRetryLimit, 0.02)

	honestW, honestPf := build(false)
	honestW.Run(d)
	hs, _ := honestW.Station(SenderName(0))
	hc := hs.DCF.Counters()
	honestMACLoss := float64(hc.ACKTimeouts) / float64(hc.DataSent)
	if det.Evaluate(honestMACLoss, honestPf.Prober.AppLoss()) {
		t.Errorf("honest receiver flagged: macLoss=%.3f appLoss=%.3f",
			honestMACLoss, honestPf.Prober.AppLoss())
	}

	fakeW, fakePf := build(true)
	fakeW.Run(d)
	fs, _ := fakeW.Station(SenderName(0))
	fc := fs.DCF.Counters()
	fakeMACLoss := float64(fc.ACKTimeouts) / float64(fc.DataSent)
	if !det.Evaluate(fakeMACLoss, fakePf.Prober.AppLoss()) {
		t.Errorf("fake-ACKing receiver not flagged: macLoss=%.3f appLoss=%.3f",
			fakeMACLoss, fakePf.Prober.AppLoss())
	}
}

func TestSpoofEmulationOption(t *testing.T) {
	// Table VIII substrate: sender treats ACK timeouts toward R1 as
	// success; under loss, R1's TCP suffers while R2's does not.
	w, err := BuildPairs(PairsConfig{
		Config:    Config{Seed: 19, UseRTSCTS: true, Error: phys.BERSpec(2e-4)},
		N:         2,
		Transport: TCP,
		SenderOpts: func(w *World, i int) StationOpts {
			if i != 0 {
				return StationOpts{}
			}
			return StationOpts{SpoofEmulationVictims: []string{ReceiverName(0)}}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	w.Run(5 * sim.Second)
	f1, _ := w.Flow(1)
	f2, _ := w.Flow(2)
	if f1.GoodputMbps(5*sim.Second) >= f2.GoodputMbps(5*sim.Second) {
		t.Errorf("victim %.2f ≥ protected %.2f under spoof emulation",
			f1.GoodputMbps(5*sim.Second), f2.GoodputMbps(5*sim.Second))
	}
	s1, _ := w.Station(SenderName(0))
	if s1.DCF.Counters().ACKTimeouts != 0 {
		t.Error("spoof emulation still counted ACK timeouts")
	}
}
