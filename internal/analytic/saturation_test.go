package analytic

import (
	"testing"

	"greedy80211/internal/phys"
)

func satCfg(n int) SaturationConfig {
	return SaturationConfig{
		Stations:      n,
		Params:        phys.Params80211B(),
		PayloadBytes:  1024,
		OverheadBytes: 28,
		UseRTSCTS:     true,
	}
}

func TestSaturationValidation(t *testing.T) {
	if _, err := Saturation(satCfg(0)); err == nil {
		t.Error("zero stations accepted")
	}
	bad := satCfg(2)
	bad.PayloadBytes = 0
	if _, err := Saturation(bad); err == nil {
		t.Error("zero payload accepted")
	}
}

func TestSaturationSingleStation(t *testing.T) {
	res, err := Saturation(satCfg(1))
	if err != nil {
		t.Fatal(err)
	}
	if res.PCollision != 0 {
		t.Errorf("single station collision prob = %v", res.PCollision)
	}
	// One saturated 802.11b RTS/CTS flow measures ≈3.5 Mbps in the
	// simulator (and in the paper's testbed-equivalent regimes).
	if mbps := res.ThroughputBps / 1e6; mbps < 3.0 || mbps > 4.2 {
		t.Errorf("single-station saturation = %.2f Mbps, want ≈3.5", mbps)
	}
}

func TestSaturationTwoStationsMatchesSimulator(t *testing.T) {
	res, err := Saturation(satCfg(2))
	if err != nil {
		t.Fatal(err)
	}
	// The simulator's two-pair fair baseline is ≈1.85 Mbps per flow.
	if mbps := res.PerStationBps / 1e6; mbps < 1.5 || mbps > 2.1 {
		t.Errorf("2-station per-flow = %.2f Mbps, want ≈1.85", mbps)
	}
	if res.PCollision <= 0 || res.PCollision > 0.2 {
		t.Errorf("collision prob = %v", res.PCollision)
	}
}

func TestSaturationMonotoneInStations(t *testing.T) {
	prevPer := 1e12
	prevTotal := 0.0
	for _, n := range []int{1, 2, 4, 8, 16} {
		res, err := Saturation(satCfg(n))
		if err != nil {
			t.Fatal(err)
		}
		if res.PerStationBps >= prevPer {
			t.Errorf("per-station share did not shrink at n=%d", n)
		}
		prevPer = res.PerStationBps
		// Aggregate declines slowly with n (more collisions) after n=1,
		// but must stay within 40% of the single-station capacity.
		if n > 1 && res.ThroughputBps < 0.6*prevTotal {
			t.Errorf("aggregate collapsed at n=%d", n)
		}
		if n == 1 {
			prevTotal = res.ThroughputBps
		}
	}
}

func TestSaturationBasicVsRTS(t *testing.T) {
	rts, err := Saturation(satCfg(8))
	if err != nil {
		t.Fatal(err)
	}
	basic := satCfg(8)
	basic.UseRTSCTS = false
	noRTS, err := Saturation(basic)
	if err != nil {
		t.Fatal(err)
	}
	// With large data frames and many stations, RTS/CTS pays for itself:
	// collisions cost an RTS instead of a full data frame. The model must
	// at least rank the collision costs correctly: basic access loses
	// more per collision, so its throughput advantage at 8 stations is
	// small or negative.
	ratio := noRTS.ThroughputBps / rts.ThroughputBps
	if ratio > 1.45 {
		t.Errorf("basic access %.2f× RTS throughput at n=8; collision costs look wrong", ratio)
	}
}

func TestGreedyGainBound(t *testing.T) {
	for _, tt := range []struct {
		n       int
		wantMin float64
		wantMax float64
	}{
		{2, 1.8, 2.3},
		{8, 7.0, 9.5},
	} {
		gain, err := GreedyGainBound(satCfg(tt.n))
		if err != nil {
			t.Fatal(err)
		}
		if gain < tt.wantMin || gain > tt.wantMax {
			t.Errorf("gain bound at n=%d: %.2f, want ≈%d×", tt.n, gain, tt.n)
		}
	}
	if _, err := GreedyGainBound(satCfg(0)); err == nil {
		t.Error("zero stations accepted")
	}
}

func TestSaturationRejectsNegativeOverhead(t *testing.T) {
	bad := satCfg(2)
	bad.OverheadBytes = -1
	if _, err := Saturation(bad); err == nil {
		t.Error("negative overhead accepted")
	}
}

func TestSaturationRejectsUnphysicalFixedPoint(t *testing.T) {
	// Extreme populations push the damped iteration outside Bianchi's
	// contraction region; the solver must refuse rather than report a
	// garbage (zero or negative) tau.
	for _, n := range []int{1 << 20, 1 << 30} {
		res, err := Saturation(satCfg(n))
		if err == nil && !(res.Tau > 0 && res.Tau <= 1 && res.PCollision >= 0 && res.PCollision < 1) {
			t.Errorf("n=%d: unphysical fixed point accepted: %+v", n, res)
		}
		if err == nil && res.ThroughputBps < 0 {
			t.Errorf("n=%d: negative throughput accepted: %+v", n, res)
		}
	}
}
