package analytic_test

import (
	"fmt"
	"math"
	"os"
	"sort"
	"testing"

	"greedy80211/internal/analytic"
	"greedy80211/internal/report"
)

// loadRefSets maps artifact id -> golden set for the calibration checks.
func loadRefSets(t *testing.T) map[string]*report.RefSet {
	t.Helper()
	sets, err := report.LoadEmbedded()
	if err != nil {
		t.Fatal(err)
	}
	byID := make(map[string]*report.RefSet, len(sets))
	for _, s := range sets {
		byID[s.Artifact] = s
	}
	return byID
}

// Every prediction must target a real check of a real artifact: a typo'd
// check id would silently produce a "missing" model verdict in the report
// instead of the intended prediction.
func TestPredictionsTargetRealChecks(t *testing.T) {
	sets := loadRefSets(t)
	for _, artifact := range analytic.PredictedArtifacts() {
		set, ok := sets[artifact]
		if !ok {
			t.Errorf("Predict covers %q which has no refdata set", artifact)
			continue
		}
		checkIDs := make(map[string]string, len(set.Checks))
		banded := make(map[string]bool, len(set.Checks))
		for _, c := range set.Checks {
			checkIDs[c.ID] = c.Kind
			if c.HasModel() {
				banded[c.ID] = true
			}
		}
		pred, err := analytic.Predict(artifact)
		if err != nil {
			t.Errorf("%s: %v", artifact, err)
			continue
		}
		if pred.Artifact != artifact {
			t.Errorf("%s: prediction labeled %q", artifact, pred.Artifact)
		}
		if len(pred.Values) == 0 {
			t.Errorf("%s: empty prediction", artifact)
		}
		for id, v := range pred.Values {
			kind, ok := checkIDs[id]
			if !ok {
				t.Errorf("%s: predicted check %q does not exist in refdata", artifact, id)
				continue
			}
			if kind == "text" {
				t.Errorf("%s/%s: numeric prediction for a text check", artifact, id)
			}
			if math.IsNaN(v) || math.IsInf(v, 0) {
				t.Errorf("%s/%s: prediction %v not finite", artifact, id, v)
			}
			// Coverage must be declared: a prediction without model bands
			// would never be evaluated by the report.
			if !banded[id] {
				t.Errorf("%s/%s: prediction has no model bands in refdata", artifact, id)
			}
			delete(banded, id)
		}
		// And the converse: a model-banded check without a prediction
		// yields a missing model verdict, which fails -analytic-gate.
		for id := range banded {
			t.Errorf("%s/%s: refdata declares model bands but Predict returns no value", artifact, id)
		}
		for _, sc := range pred.Scenarios {
			if sc.Label == "" || sc.Result == nil {
				t.Errorf("%s: scenario missing label or result", artifact)
			}
		}
	}
}

// Predict must be deterministic: the report gate diffs its output
// byte-for-byte and the screening pass compares across runs.
func TestPredictDeterministic(t *testing.T) {
	for _, artifact := range analytic.PredictedArtifacts() {
		a, err := analytic.Predict(artifact)
		if err != nil {
			t.Fatal(err)
		}
		b, err := analytic.Predict(artifact)
		if err != nil {
			t.Fatal(err)
		}
		for id, v := range a.Values {
			if b.Values[id] != v {
				t.Errorf("%s/%s: %v != %v across calls", artifact, id, v, b.Values[id])
			}
		}
	}
}

func TestPredictUnknownArtifact(t *testing.T) {
	if _, err := analytic.Predict("fig999"); err == nil {
		t.Error("unknown artifact accepted")
	}
}

// TestPredictCalibration prints the model-vs-golden table (the source of
// MODEL.md §6) and enforces the documented worst-case model error per
// covered check. Bands here are the analytic model's own accuracy
// envelope against the checked-in golden (simulated) values — reruns of
// this test catch model regressions without running the simulator.
func TestPredictCalibration(t *testing.T) {
	sets := loadRefSets(t)
	verbose := os.Getenv("CALIBRATION") != "" || testing.Verbose()
	for _, artifact := range analytic.PredictedArtifacts() {
		set := sets[artifact]
		if set == nil {
			continue // TestPredictionsTargetRealChecks reports this
		}
		pred, err := analytic.Predict(artifact)
		if err != nil {
			t.Fatal(err)
		}
		ids := make([]string, 0, len(pred.Values))
		for id := range pred.Values {
			ids = append(ids, id)
		}
		sort.Strings(ids)
		for _, id := range ids {
			var check *report.Check
			for i := range set.Checks {
				if set.Checks[i].ID == id {
					check = &set.Checks[i]
					break
				}
			}
			if check == nil {
				continue
			}
			model := pred.Values[id]
			delta := model - check.Want
			relErr := math.Abs(delta)
			if check.Want != 0 {
				relErr = math.Abs(delta) / math.Abs(check.Want)
			}
			if verbose {
				fmt.Printf("%-6s %-26s model=%10.4f want=%10.4f delta=%+9.4f rel=%6.1f%%\n",
					artifact, id, model, check.Want, delta, relErr*100)
			}
		}
	}
}
