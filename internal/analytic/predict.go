package analytic

import (
	"fmt"
	"sort"

	"greedy80211/internal/phys"
)

// This file maps the nine gated artifacts' experiment configurations onto
// Markov-model inputs (multiclass.go) and evaluates each artifact's
// refdata checks analytically. The report gate joins these predictions
// against the simulated measurements as a second, advisory oracle; the
// campaign screening pass uses them to skip units the model already
// explains. Coverage is deliberately partial: text checks and values
// dominated by effects outside the model (TCP loss recovery under heavy
// BER, capture-mediated residuals) carry no prediction. MODEL.md
// documents every covered check, its calibration, and its accuracy.

// Prediction is the model's output for one artifact: predicted values
// keyed by the artifact's refdata check IDs, plus the labeled operating
// points they came from for display.
type Prediction struct {
	Artifact  string
	Values    map[string]float64
	Scenarios []PredictedScenario
}

// PredictedScenario is one solved model configuration behind a
// prediction.
type PredictedScenario struct {
	Label  string
	Result *ModelResult
}

const (
	predPayloadBytes = 1024 // DefaultPayloadBytes / TCP MSS
	udpOverheadBytes = 28   // UDP/IP headers on the air
	tcpOverheadBytes = 40   // TCP/IP headers on the air
	tcpAckFrameBytes = 40   // pure TCP ACK: TCP/IP headers only
)

// Predict evaluates the Markov model at the named gated artifact's
// configuration. Predictions are pure functions of the artifact — they
// hold at any seed count or duration, which is exactly what makes them a
// useful screening oracle.
func Predict(artifact string) (*Prediction, error) {
	fn, ok := predictors[artifact]
	if !ok {
		return nil, fmt.Errorf("analytic: no model predictions for artifact %q (have %v)",
			artifact, PredictedArtifacts())
	}
	return fn()
}

// PredictedArtifacts lists the artifacts Predict covers, sorted.
func PredictedArtifacts() []string {
	ids := make([]string, 0, len(predictors))
	for id := range predictors {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

var predictors = map[string]func() (*Prediction, error){
	"fig1":  predictFig1,
	"fig2":  predictFig2,
	"fig4":  predictFig4,
	"fig6":  predictFig6,
	"fig11": predictFig11,
	"fig18": predictFig18,
	"fig23": predictFig23,
	"tab4":  predictTab4,
	"extc":  predictExtc,
}

// chainFor builds the standard per-band backoff chain (short retry
// limit, CWmin..CWmax doubling).
func chainFor(p phys.Params) Chain {
	return Chain{CWMin: p.CWMin, CWMax: p.CWMax, RetryLimit: p.ShortRetryLimit}
}

// msToSlots converts a NAV-inflation amount to backoff slots.
func msToSlots(p phys.Params, ms float64) int {
	return int(ms * 1e6 / float64(int64(p.SlotTime)))
}

// dataAirSlots is one UDP data frame's airtime in backoff slots — the
// unit of the hidden-terminal vulnerability window.
func dataAirSlots(p phys.Params) int {
	air := p.TxDuration(predPayloadBytes+udpOverheadBytes+phys.DataHeaderBytes, p.DataRateBps)
	return int(int64(air) / int64(p.SlotTime))
}

// vulnGoodputSlots is the effective hidden-terminal vulnerability window
// for goodput accounting (802.11b, 1024-byte frames): wider than the
// textbook two-airtimes window because both hidden senders keep counting
// down through each other's transmissions, so every attempt exposes the
// whole retransmission burst, not one frame. Calibrated once against the
// Fig 18 GP=100% operating point and reused unchanged across the
// fig18/extc goodput checks (MODEL.md §5). The Table IV average-CW checks
// instead use one data airtime: the simulator's capture effect rescues
// roughly the overlaps where the competitor started second, and CW growth
// only sees the unrescued half.
const vulnGoodputSlots = 160

// udpNAVModel builds nFair fair UDP pairs plus (when vSlots > 0) one
// greedy pair whose receiver inflates reservations by vSlots — the
// Fig 1/2/23 and extended-C scenario family (RTS/CTS, saturated CBR).
func udpNAVModel(p phys.Params, nFair, vSlots int) Model {
	classes := []Class{{
		Name: "fair", N: nFair,
		Chain:        chainFor(p),
		PayloadBytes: predPayloadBytes, OverheadBytes: udpOverheadBytes,
	}}
	if vSlots > 0 {
		classes = append(classes, Class{
			Name: "greedy", N: 1,
			Chain:        chainFor(p),
			PayloadBytes: predPayloadBytes, OverheadBytes: udpOverheadBytes,
			InflateSlots: vSlots,
		})
	}
	return Model{Params: p, Classes: classes, UseRTSCTS: true}
}

// tcpNAVModel builds a TCP flow population: each flow contributes a data
// sender (MSS payload under TCP/IP headers) and a reverse ACK sender
// contending for the same medium. When vSlots > 0 one flow is greedy: its
// data sender enjoys the NAV-inflation head start and its ACK stream
// rides inside the inflated reservations (race-exempt) instead of being
// frozen with the victims.
func tcpNAVModel(p phys.Params, flows, vSlots int) Model {
	ch := chainFor(p)
	m := Model{Params: p, UseRTSCTS: true}
	if vSlots > 0 {
		m.Classes = append(m.Classes,
			Class{Name: "greedy-data", N: 1, Chain: ch,
				PayloadBytes: predPayloadBytes, OverheadBytes: tcpOverheadBytes,
				InflateSlots: vSlots},
			Class{Name: "greedy-ack", N: 1, Chain: ch,
				PayloadBytes: tcpAckFrameBytes, RaceExempt: true})
		flows--
	}
	if flows > 0 {
		m.Classes = append(m.Classes,
			Class{Name: "fair-data", N: flows, Chain: ch,
				PayloadBytes: predPayloadBytes, OverheadBytes: tcpOverheadBytes},
			Class{Name: "fair-ack", N: flows, Chain: ch,
				PayloadBytes: tcpAckFrameBytes})
	}
	return m
}

// hiddenModel builds the Fig 18 / Table IV hidden-pairs world: two basic
// access UDP senders that cannot carrier-sense each other, nGreedy of
// whose receivers fake ACKs at greedy percentage gp. vulnSlots sets the
// vulnerability window (see MODEL.md §5 for the two calibrations).
func hiddenModel(p phys.Params, gp float64, nGreedy, vulnSlots int) Model {
	ch := chainFor(p)
	m := Model{Params: p, Hidden: true, VulnSlots: vulnSlots}
	honest := 2 - nGreedy
	if honest > 0 {
		m.Classes = append(m.Classes, Class{
			Name: "honest", N: honest, Chain: ch,
			PayloadBytes: predPayloadBytes, OverheadBytes: udpOverheadBytes,
		})
	}
	if nGreedy > 0 {
		m.Classes = append(m.Classes, Class{
			Name: "greedy", N: nGreedy, Chain: ch,
			PayloadBytes: predPayloadBytes, OverheadBytes: udpOverheadBytes,
			SuppressCWGrowth: gp / 100,
		})
	}
	return m
}

// mbps converts to the figures' megabit unit.
func mbps(bps float64) float64 { return bps / 1e6 }

func predictFig1() (*Prediction, error) {
	p := phys.Params80211B()
	base, err := udpNAVModel(p, 2, 0).Solve()
	if err != nil {
		return nil, err
	}
	att, err := udpNAVModel(p, 1, msToSlots(p, 0.6)).Solve()
	if err != nil {
		return nil, err
	}
	deep, err := udpNAVModel(p, 1, msToSlots(p, 1.0)).Solve()
	if err != nil {
		return nil, err
	}
	fair := base.Class("fair").PerStationBps
	return &Prediction{
		Artifact: "fig1",
		Values: map[string]float64{
			"fair-baseline-nr": mbps(fair),
			"fair-baseline-gr": mbps(fair),
			"victim-starved":   mbps(att.Class("fair").PerStationBps),
			"greedy-monopoly":  mbps(att.Class("greedy").PerStationBps),
			"starvation-ratio": deep.Class("fair").PerStationBps / deep.Class("greedy").PerStationBps,
		},
		Scenarios: []PredictedScenario{
			{"2 fair UDP pairs (802.11b, RTS/CTS)", base},
			{"+0.6 ms CTS inflation", att},
			{"+1.0 ms CTS inflation", deep},
		},
	}, nil
}

func predictFig2() (*Prediction, error) {
	p := phys.Params80211B()
	base, err := udpNAVModel(p, 2, 0).Solve()
	if err != nil {
		return nil, err
	}
	at32, err := udpNAVModel(p, 1, 32).Solve()
	if err != nil {
		return nil, err
	}
	at40, err := udpNAVModel(p, 1, 40).Solve()
	if err != nil {
		return nil, err
	}
	return &Prediction{
		Artifact: "fig2",
		Values: map[string]float64{
			"gs-cw-at-cwmin":        base.Class("fair").AvgCW,
			"gs-cw-under-inflation": at32.Class("greedy").AvgCW,
			"ns-cw-under-inflation": at40.Class("fair").AvgCW,
		},
		Scenarios: []PredictedScenario{
			{"no inflation", base},
			{"+32 slots", at32},
			{"+40 slots", at40},
		},
	}, nil
}

func predictFig4() (*Prediction, error) {
	p := phys.Params80211B()
	base, err := tcpNAVModel(p, 2, 0).Solve()
	if err != nil {
		return nil, err
	}
	att, err := tcpNAVModel(p, 2, msToSlots(p, 2)).Solve()
	if err != nil {
		return nil, err
	}
	att1ms, err := tcpNAVModel(p, 2, msToSlots(p, 1)).Solve()
	if err != nil {
		return nil, err
	}
	return &Prediction{
		Artifact: "fig4",
		Values: map[string]float64{
			"cts-fair-baseline": mbps(base.Class("fair-data").PerStationBps),
			"cts-greedy-wins":   mbps(att.Class("greedy-data").PerStationBps),
			"rtscts-greedy":     mbps(att1ms.Class("greedy-data").PerStationBps),
		},
		Scenarios: []PredictedScenario{
			{"2 fair TCP flows (802.11b, RTS/CTS)", base},
			{"+2 ms inflation", att},
			{"+1 ms inflation", att1ms},
		},
	}, nil
}

func predictFig6() (*Prediction, error) {
	p := phys.Params80211B()
	at10, err := tcpNAVModel(p, 8, msToSlots(p, 10)).Solve()
	if err != nil {
		return nil, err
	}
	at31, err := tcpNAVModel(p, 8, msToSlots(p, 31)).Solve()
	if err != nil {
		return nil, err
	}
	return &Prediction{
		Artifact: "fig6",
		Values: map[string]float64{
			"greedy-dominates-10ms": mbps(at10.Class("greedy-data").PerStationBps),
			"normals-crushed-10ms":  mbps(at10.Class("fair-data").PerStationBps),
			"greedy-max-inflation":  mbps(at31.Class("greedy-data").PerStationBps),
			"domination-ratio":      at31.Class("fair-data").PerStationBps / at31.Class("greedy-data").PerStationBps,
		},
		Scenarios: []PredictedScenario{
			{"8 TCP flows, +10 ms inflation", at10},
			{"8 TCP flows, +31 ms inflation", at31},
		},
	}, nil
}

func predictFig11() (*Prediction, error) {
	vals := map[string]float64{}
	var scenarios []PredictedScenario
	for _, band := range []struct {
		p      phys.Params
		prefix string
	}{
		{phys.Params80211B(), "11b"},
		{phys.Params80211A(), "11a"},
	} {
		solo, err := tcpNAVModel(band.p, 1, 0).Solve()
		if err != nil {
			return nil, err
		}
		// ACK spoofing removes the MAC's loss recovery for the greedy
		// flow: every corrupted data frame (FER of a TCP data frame at
		// this BER, Table III) is a delivered-payload loss, scaling the
		// otherwise-unopposed flow's goodput.
		loss := FER(2e-4, UnitsTCPData)
		vals[band.prefix+"-greedy-gains"] = mbps(solo.Class("fair-data").PerStationBps) * (1 - loss)
		// The spoofer's flow never escalates its window; the honest
		// competitor starves. The model predicts full starvation — the
		// simulator's residual trickle sits inside the absolute band.
		vals[band.prefix+"-victim-starved"] = 0
		scenarios = append(scenarios, PredictedScenario{
			Label:  fmt.Sprintf("solo TCP flow (802.%s, RTS/CTS)", band.prefix),
			Result: solo,
		})
	}
	// Without a greedy receiver the two flows are exchangeable: the
	// model's fairness ratio is identically 1.
	vals["11b-nogr-fairness"] = 1
	return &Prediction{Artifact: "fig11", Values: vals, Scenarios: scenarios}, nil
}

func predictFig18() (*Prediction, error) {
	p := phys.Params80211B()
	base, err := hiddenModel(p, 0, 1, vulnGoodputSlots).Solve()
	if err != nil {
		return nil, err
	}
	att, err := hiddenModel(p, 100, 1, vulnGoodputSlots).Solve()
	if err != nil {
		return nil, err
	}
	return &Prediction{
		Artifact: "fig18",
		Values: map[string]float64{
			"one-gr-baseline-fairness": base.Class("honest").PerStationBps / base.Class("greedy").PerStationBps,
			"one-gr-victim-starved":    mbps(att.Class("honest").PerStationBps),
			"one-gr-greedy-peak":       mbps(att.Class("greedy").PerStationBps),
		},
		Scenarios: []PredictedScenario{
			{"hidden pairs, GP 0%", base},
			{"hidden pairs, GP 100%", att},
		},
	}, nil
}

func predictFig23() (*Prediction, error) {
	p := phys.Params80211B()
	fair, err := udpNAVModel(p, 2, 0).Solve()
	if err != nil {
		return nil, err
	}
	att, err := udpNAVModel(p, 1, msToSlots(p, 31)).Solve()
	if err != nil {
		return nil, err
	}
	tcpFair, err := tcpNAVModel(p, 2, 0).Solve()
	if err != nil {
		return nil, err
	}
	fairShare := mbps(fair.Class("fair").PerStationBps)
	return &Prediction{
		Artifact: "fig23",
		Values: map[string]float64{
			// In comm range, an unchecked +31 ms inflation starves the
			// victim; with GRC clamping the NAV (or beyond interference
			// range) the victim recovers the fair 2-pair share.
			"udp-attack-starves":     mbps(att.Class("fair").PerStationBps),
			"udp-grc-restores":       fairShare,
			"udp-beyond-range-inert": fairShare,
			"tcp-grc-restores":       mbps(tcpFair.Class("fair-data").PerStationBps),
		},
		Scenarios: []PredictedScenario{
			{"fair 2-pair UDP baseline", fair},
			{"+31 ms inflation (in range, no GRC)", att},
			{"fair 2-flow TCP baseline", tcpFair},
		},
	}, nil
}

func predictTab4() (*Prediction, error) {
	b := phys.Params80211B()
	a := phys.Params80211A()
	// Average-CW rows calibrate the vulnerability window at ONE data
	// airtime: the simulator's capture effect saves roughly the overlaps
	// where the competitor started second, halving the textbook window
	// as seen by the backoff machinery (MODEL.md §5).
	noGR, err := hiddenModel(b, 0, 0, dataAirSlots(b)).Solve()
	if err != nil {
		return nil, err
	}
	oneGRb, err := hiddenModel(b, 100, 1, dataAirSlots(b)).Solve()
	if err != nil {
		return nil, err
	}
	oneGRa, err := hiddenModel(a, 100, 1, dataAirSlots(a)).Solve()
	if err != nil {
		return nil, err
	}
	return &Prediction{
		Artifact: "tab4",
		Values: map[string]float64{
			"11b-nogr-s1":  noGR.Class("honest").AvgCW,
			"11b-nogr-s2":  noGR.Class("honest").AvgCW,
			"11b-onegr-gs": oneGRb.Class("greedy").AvgCW,
			"11a-onegr-gs": oneGRa.Class("greedy").AvgCW,
		},
		Scenarios: []PredictedScenario{
			{"802.11b hidden pairs, no GR", noGR},
			{"802.11b hidden pairs, R2 GR (GP 100%)", oneGRb},
			{"802.11a hidden pairs, R2 GR (GP 100%)", oneGRa},
		},
	}, nil
}

func predictExtc() (*Prediction, error) {
	p := phys.Params80211B()
	nav, err := udpNAVModel(p, 1, msToSlots(p, 10)).Solve()
	if err != nil {
		return nil, err
	}
	fake, err := hiddenModel(p, 100, 1, vulnGoodputSlots).Solve()
	if err != nil {
		return nil, err
	}
	return &Prediction{
		Artifact: "extc",
		Values: map[string]float64{
			"nav-victim-starved":  mbps(nav.Class("fair").PerStationBps),
			"nav-greedy-wins":     mbps(nav.Class("greedy").PerStationBps),
			"nav-backoff-nominal": nav.Class("greedy").AvgBackoffSlots,
			// The spoofed competitor's victim starves (see fig11).
			"spoof-victim":     0,
			"fake-greedy-wins": mbps(fake.Class("greedy").PerStationBps),
		},
		Scenarios: []PredictedScenario{
			{"+10 ms CTS inflation (UDP pairs)", nav},
			{"fake ACKs, hidden pairs, GP 100%", fake},
		},
	}, nil
}
