package analytic

import (
	"math"
	"testing"
	"testing/quick"
)

func TestCWDistNormalize(t *testing.T) {
	d := CWDist{31: 2, 63: 2}
	if err := d.Normalize(); err != nil {
		t.Fatal(err)
	}
	if d[31] != 0.5 || d[63] != 0.5 {
		t.Errorf("normalized = %v", d)
	}
	if err := (CWDist{}).Normalize(); err == nil {
		t.Error("empty dist normalized")
	}
	if err := (CWDist{-1: 1}).Normalize(); err == nil {
		t.Error("negative CW accepted")
	}
}

func TestFromSamples(t *testing.T) {
	d := FromSamples([]int{31, 31, 63, 127})
	if d[31] != 0.5 || d[63] != 0.25 || d[127] != 0.25 {
		t.Errorf("FromSamples = %v", d)
	}
	if len(FromSamples(nil)) != 0 {
		t.Error("empty samples should yield empty dist")
	}
}

func TestSendProbabilitiesSymmetric(t *testing.T) {
	// No inflation, identical windows: equal send probabilities.
	gs, ns := Single(31), Single(31)
	pGS, pNS, err := SendProbabilities(gs, ns, 0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(pGS-pNS) > 1e-12 {
		t.Errorf("symmetric case: pGS=%v pNS=%v", pGS, pNS)
	}
	ratio, err := SendingRatio(gs, ns, 0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(ratio-0.5) > 1e-12 {
		t.Errorf("symmetric ratio = %v, want 0.5", ratio)
	}
}

func TestSendProbabilitiesInflationFavorsGS(t *testing.T) {
	gs, ns := Single(31), Single(31)
	prev := 0.5
	for _, v := range []int{1, 5, 10, 20, 28, 32} {
		ratio, err := SendingRatio(gs, ns, v)
		if err != nil {
			t.Fatal(err)
		}
		if ratio < prev {
			t.Errorf("ratio decreased at v=%d: %v < %v", v, ratio, prev)
		}
		prev = ratio
	}
	// With v beyond CWmin+1, NS can never win: ratio → 1.
	ratio, _ := SendingRatio(gs, ns, 33)
	if ratio != 1 {
		t.Errorf("v=33 over CW 31: ratio = %v, want 1 (starvation)", ratio)
	}
}

func TestSendProbabilitiesBiggerNSWindowHurtsNS(t *testing.T) {
	// As NS's CW distribution shifts up (more collisions), GS's share
	// grows even at fixed v.
	gs := Single(31)
	r1, err := SendingRatio(gs, Single(31), 5)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := SendingRatio(gs, CWDist{31: 0.3, 255: 0.4, 1023: 0.3}, 5)
	if err != nil {
		t.Fatal(err)
	}
	if r2 <= r1 {
		t.Errorf("backed-off NS should lose share: %v vs %v", r2, r1)
	}
}

func TestSendProbabilitiesErrors(t *testing.T) {
	if _, _, err := SendProbabilities(CWDist{}, Single(31), 0); err == nil {
		t.Error("empty GS dist accepted")
	}
	if _, err := SendingRatio(Single(31), CWDist{}, 0); err == nil {
		t.Error("empty NS dist accepted")
	}
}

func TestTableIIIValues(t *testing.T) {
	rows := TableIII()
	if len(rows) != 5 {
		t.Fatalf("rows = %d", len(rows))
	}
	// Spot-check against the paper (within 8%; see phys tests for the one
	// anomalous published cell).
	want := []struct{ ack, rts, tack, tdata float64 }{
		{3.799e-4, 4.399e-4, 1.119e-3, 1.130e-2},
		{7.519e-3, 8.762e-3, 2.235e-2, 2.033e-1},
		{1.121e-2, 1.398e-2, 3.521e-2, 3.048e-1},
		{1.658e-2, 1.918e-2, 4.810e-2, 3.934e-1},
		{2.995e-2, 3.460e-2, 8.574e-2, 5.971e-1},
	}
	approx := func(got, w float64) bool { return math.Abs(got-w)/w < 0.08 }
	for i, r := range rows {
		if !approx(r.ACKCTS, want[i].ack) || !approx(r.RTS, want[i].rts) ||
			!approx(r.TCPACK, want[i].tack) || !approx(r.TCPData, want[i].tdata) {
			t.Errorf("row %d = %+v, want ≈ %+v", i, r, want[i])
		}
	}
}

func TestFEREdges(t *testing.T) {
	if FER(0, 100) != 0 || FER(-1, 100) != 0 || FER(0.5, 0) != 0 {
		t.Error("degenerate FER not zero")
	}
	if FER(1, 10) != 1 || FER(2, 10) != 1 {
		t.Error("certain corruption not one")
	}
}

func TestAddrPreservationMatchesTableI80211B(t *testing.T) {
	// 802.11b: ~2% frame corruption on ~1100-byte frames → per-byte
	// p ≈ 1.9e-5. Table I: 98.8% dst preserved, 94.9% src given dst.
	dst, src := AddrPreservation(1.9e-5, 1100)
	if dst < 0.98 {
		t.Errorf("dst preservation = %v, want ≥ 0.98 (Table I: 0.988)", dst)
	}
	if src < 0.98 {
		// Under memoryless errors src|dst is even higher than measured;
		// the measured 94.9% includes burstiness the uniform model lacks.
		t.Errorf("src|dst preservation = %v", src)
	}
}

func TestAddrPreservationEdges(t *testing.T) {
	d, s := AddrPreservation(0, 1000)
	if d != 1 || s != 1 {
		t.Error("zero error rate should preserve everything")
	}
	d, s = AddrPreservation(0.5, 10)
	if d != 1 || s != 1 {
		t.Error("tiny frame should short-circuit")
	}
}

// Property: send probabilities are valid probabilities and the ratio is
// monotone in v.
func TestPropertySendProbabilityBounds(t *testing.T) {
	f := func(vRaw uint8, cwSel uint8) bool {
		v := int(vRaw % 64)
		cwNS := []int{31, 63, 255, 1023}[cwSel%4]
		pGS, pNS, err := SendProbabilities(Single(31), Single(cwNS), v)
		if err != nil {
			return false
		}
		return pGS >= 0 && pGS <= 1+1e-9 && pNS >= 0 && pNS <= 1+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: FER is monotone in BER and units.
func TestPropertyFERMonotoneAnalytic(t *testing.T) {
	f := func(b1Raw, b2Raw uint16, u1Raw, u2Raw uint8) bool {
		b1 := float64(b1Raw) / (1 << 20)
		b2 := float64(b2Raw) / (1 << 20)
		if b1 > b2 {
			b1, b2 = b2, b1
		}
		u1, u2 := int(u1Raw), int(u2Raw)
		if u1 > u2 {
			u1, u2 = u2, u1
		}
		return FER(b1, u2) <= FER(b2, u2)+1e-15 && FER(b2, u1) <= FER(b2, u2)+1e-15
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
