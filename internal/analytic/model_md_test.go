package analytic_test

import (
	"fmt"
	"math"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"greedy80211/internal/analytic"
	"greedy80211/internal/report"
	"greedy80211/internal/stats"
)

const (
	modelMDBegin = "<!-- BEGIN MODEL ACCURACY TABLE (generated: UPDATE_MODEL_MD=1 go test ./internal/analytic/ -run TestModelMDAccuracyTable) -->"
	modelMDEnd   = "<!-- END MODEL ACCURACY TABLE -->"
)

// accuracyTable renders MODEL.md §6: every model-covered check's
// prediction against its golden want, with the model-band verdict the
// report would assign.
func accuracyTable(t *testing.T) string {
	t.Helper()
	sets := loadRefSets(t)
	var b strings.Builder
	b.WriteString("| artifact | check | model | golden | Δ | rel | model verdict |\n")
	b.WriteString("|---|---|---|---|---|---|---|\n")
	for _, artifact := range analytic.PredictedArtifacts() {
		set := sets[artifact]
		if set == nil {
			t.Fatalf("no refdata set for %s", artifact)
		}
		pred, err := analytic.Predict(artifact)
		if err != nil {
			t.Fatal(err)
		}
		ids := make([]string, 0, len(pred.Values))
		for id := range pred.Values {
			ids = append(ids, id)
		}
		sort.Strings(ids)
		for _, id := range ids {
			var check *report.Check
			for i := range set.Checks {
				if set.Checks[i].ID == id {
					check = &set.Checks[i]
					break
				}
			}
			if check == nil {
				continue // TestPredictionsTargetRealChecks reports this
			}
			model := pred.Values[id]
			delta := model - check.Want
			rel := "—"
			if check.Want != 0 {
				rel = fmt.Sprintf("%+.1f%%", delta/math.Abs(check.Want)*100)
			}
			verdict := stats.Classify(model, check.Want, check.ModelPass, check.ModelFail)
			fmt.Fprintf(&b, "| `%s` | `%s` | %.4g | %.4g | %+.4g | %s | %s |\n",
				artifact, id, model, check.Want, delta, rel, verdict)
		}
	}
	return b.String()
}

// TestModelMDAccuracyTable keeps MODEL.md §6 current: the accuracy
// table between the markers must match what Predict and the embedded
// refdata produce right now. UPDATE_MODEL_MD=1 regenerates the block in
// place.
func TestModelMDAccuracyTable(t *testing.T) {
	path := filepath.Join("..", "..", "MODEL.md")
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("reading MODEL.md: %v", err)
	}
	doc := string(raw)
	i := strings.Index(doc, modelMDBegin)
	j := strings.Index(doc, modelMDEnd)
	if i < 0 || j < 0 || j < i {
		t.Fatalf("MODEL.md accuracy-table markers missing or out of order")
	}
	want := modelMDBegin + "\n\n" + accuracyTable(t) + "\n" + modelMDEnd
	got := doc[i : j+len(modelMDEnd)]
	if got == want {
		return
	}
	if os.Getenv("UPDATE_MODEL_MD") == "" {
		t.Fatalf("MODEL.md §6 accuracy table is stale; regenerate with:\n  UPDATE_MODEL_MD=1 go test ./internal/analytic/ -run TestModelMDAccuracyTable")
	}
	updated := doc[:i] + want + doc[j+len(modelMDEnd):]
	if err := os.WriteFile(path, []byte(updated), 0o644); err != nil {
		t.Fatalf("writing MODEL.md: %v", err)
	}
	t.Logf("MODEL.md §6 accuracy table regenerated")
}
