package analytic

import (
	"fmt"
	"math"
)

// This file holds the per-backoff-stage Markov chain that replaces the
// scalar Bianchi fixed point: stage i of the chain is "the station is in
// its i-th transmission attempt for the head-of-line frame", with a
// contention window W_i that doubles from CWmin up to CWmax and, past the
// retry limit, a drop that resets the chain to stage 0. Solving the chain
// at a given per-attempt failure probability yields the station's per-slot
// transmission probability tau, its draw-weighted average contention
// window (the quantity the simulator's AvgCW counter measures), and the
// full CW mixture that the Equations 1–2 race model consumes.
//
// The derivation, perturbations, and accuracy against simulation are
// documented in MODEL.md at the repo root.

// Chain describes one station class's backoff chain.
type Chain struct {
	// CWMin and CWMax are the inclusive backoff-draw upper bounds
	// (802.11b: 31/1023).
	CWMin, CWMax int
	// RetryLimit is the number of transmission attempts per frame before
	// the frame is dropped and the window resets (stages 0..RetryLimit-1).
	// Zero means infinite retries — the classic Bianchi chain, to which
	// this solver then reduces exactly.
	RetryLimit int
}

// ChainResult is the stationary solution of the chain at a fixed
// per-attempt failure probability.
type ChainResult struct {
	// Tau is the per-slot transmission probability.
	Tau float64
	// AvgCW is the draw-weighted mean contention window in slots — each
	// transmission attempt contributes one backoff draw at its stage's
	// window, which is exactly what the simulator's AvgCW counter sums.
	AvgCW float64
	// AvgBackoffSlots is the draw-weighted mean backoff draw, AvgCW/2.
	AvgBackoffSlots float64
	// DropProb is the probability a frame exhausts the retry limit
	// (zero for the infinite-retry chain).
	DropProb float64
	// Dist is the draw-weighted CW mixture, suitable for the
	// SendProbabilities race of Equations 1–2.
	Dist CWDist
}

// validate rejects chains the solver cannot represent.
func (c Chain) validate() error {
	if c.CWMin < 1 || c.CWMax < c.CWMin {
		return fmt.Errorf("analytic: chain CW bounds [%d, %d]", c.CWMin, c.CWMax)
	}
	if c.RetryLimit < 0 {
		return fmt.Errorf("analytic: negative retry limit %d", c.RetryLimit)
	}
	return nil
}

// stages returns the per-stage CW sequence W_0..W_{R-1} (doubling, capped
// at CWMax). For the infinite-retry chain it returns stages up to and
// including the first capped one; the geometric tail beyond it repeats
// the last entry.
func (c Chain) stages() []int {
	var ws []int
	cw := c.CWMin
	n := c.RetryLimit
	for i := 0; ; i++ {
		ws = append(ws, cw)
		if n == 0 && cw >= c.CWMax {
			return ws // infinite chain: tail stays at CWMax
		}
		if n > 0 && i == n-1 {
			return ws
		}
		if cw < c.CWMax {
			cw = 2*(cw+1) - 1
			if cw > c.CWMax {
				cw = c.CWMax
			}
		}
	}
}

// Solve computes the stationary chain solution when each transmission
// attempt fails (and doubles the window) with probability q. The failure
// probability is the *perceived* one: a fake-ACK greedy receiver that
// masks a fraction of real collisions simply feeds a smaller q here.
func (c Chain) Solve(q float64) (ChainResult, error) {
	if err := c.validate(); err != nil {
		return ChainResult{}, err
	}
	if math.IsNaN(q) || q < 0 || q >= 1 {
		return ChainResult{}, fmt.Errorf("analytic: failure probability %v outside [0, 1)", q)
	}
	ws := c.stages()

	// Stationary stage-visit weights r_i = q^i. A visit to stage i draws
	// a backoff uniform on [0..W_i] — a window of W_i+1 slots — and in
	// Bianchi's normalization occupies (window+1)/2 = (W_i+2)/2 chain
	// states on average. tau = Σ r_i / Σ r_i (W_i+2)/2, which reduces
	// exactly to the closed-form Bianchi tau for the infinite chain.
	var visits, occupancy, cwWeighted float64
	dist := make(CWDist, len(ws))
	r := 1.0
	for i, w := range ws {
		ri := r
		if c.RetryLimit == 0 && i == len(ws)-1 {
			// Infinite-retry tail: stages i, i+1, ... all at W = CWMax.
			ri = r / (1 - q)
		}
		visits += ri
		occupancy += ri * float64(w+2) / 2
		cwWeighted += ri * float64(w)
		if ri > 0 {
			dist[w] += ri
		}
		r *= q
	}
	if occupancy <= 0 || math.IsNaN(occupancy) {
		return ChainResult{}, fmt.Errorf("analytic: degenerate chain occupancy")
	}
	if err := dist.Normalize(); err != nil {
		return ChainResult{}, err
	}
	res := ChainResult{
		Tau:             visits / occupancy,
		AvgCW:           cwWeighted / visits,
		AvgBackoffSlots: cwWeighted / visits / 2,
		Dist:            dist,
	}
	if c.RetryLimit > 0 {
		res.DropProb = math.Pow(q, float64(c.RetryLimit))
	}
	if math.IsNaN(res.Tau) || res.Tau <= 0 || res.Tau > 1 {
		return ChainResult{}, fmt.Errorf("analytic: chain tau %v outside (0, 1]", res.Tau)
	}
	return res, nil
}
