// Package analytic implements the paper's closed-form models: the
// NAV-inflation send-probability model of Equations 1 and 2 (validated in
// Fig 3), the BER→FER mapping of Table III, and the address-preservation
// probabilities behind Table I.
package analytic

import (
	"fmt"
	"math"
	"sort"
)

// CWDist is a probability distribution over contention-window values (the
// inclusive upper bound of the uniform backoff draw). It is typically
// measured from a simulation run's CW samples.
type CWDist map[int]float64

// Normalize scales the distribution to sum to one. It returns an error for
// an empty or non-positive distribution.
func (d CWDist) Normalize() error {
	// Summing in sorted-support order keeps the result bit-identical
	// across runs (map iteration order would perturb the last ulp).
	var sum float64
	for _, cw := range d.sortedCWs() {
		p := d[cw]
		if cw < 0 || p < 0 {
			return fmt.Errorf("analytic: invalid CW entry %d -> %v", cw, p)
		}
		sum += p
	}
	if sum <= 0 {
		return fmt.Errorf("analytic: empty CW distribution")
	}
	for cw := range d {
		d[cw] /= sum
	}
	return nil
}

// FromSamples builds a CWDist from observed CW draws.
func FromSamples(samples []int) CWDist {
	d := make(CWDist)
	for _, cw := range samples {
		d[cw]++
	}
	if len(samples) > 0 {
		for cw := range d {
			d[cw] /= float64(len(samples))
		}
	}
	return d
}

// Single returns the distribution concentrated at one CW value.
func Single(cw int) CWDist { return CWDist{cw: 1} }

// sortedCWs returns the distribution's support in ascending order. Every
// sum over a mixture iterates in this order so results are bit-identical
// across runs — the report gate diffs model output byte-for-byte.
func (d CWDist) sortedCWs() []int {
	cws := make([]int, 0, len(d))
	for cw := range d {
		cws = append(cws, cw)
	}
	sort.Ints(cws)
	return cws
}

// backoffCDFAtLeast reports Pr[B ≥ x] for B uniform on [0..cw].
func backoffCDFAtLeast(cw, x int) float64 {
	switch {
	case x <= 0:
		return 1
	case x > cw:
		return 0
	default:
		return float64(cw-x+1) / float64(cw+1)
	}
}

// backoffCDFAtMost reports Pr[B ≤ x] for B uniform on [0..cw].
func backoffCDFAtMost(cw, x int) float64 {
	switch {
	case x < 0:
		return 0
	case x >= cw:
		return 1
	default:
		return float64(x+1) / float64(cw+1)
	}
}

// mixAtLeast reports Pr[B ≥ x] under a CW mixture.
func mixAtLeast(d CWDist, x int) float64 {
	var p float64
	for _, cw := range d.sortedCWs() {
		p += d[cw] * backoffCDFAtLeast(cw, x)
	}
	return p
}

// mixAtMost reports Pr[B ≤ x] under a CW mixture.
func mixAtMost(d CWDist, x int) float64 {
	var p float64
	for _, cw := range d.sortedCWs() {
		p += d[cw] * backoffCDFAtMost(cw, x)
	}
	return p
}

// SendProbabilities evaluates Equations 1 and 2: the per-round
// transmission probabilities of the greedy sender GS and the normal sender
// NS when the greedy receiver's NAV inflation gives GS a vSlots head start.
//
//	Pr[GS sends] = Pr[B_GS ≤ B_NS + v + 1]
//	Pr[NS sends] = Pr[B_NS ≤ B_GS − v + 1]
func SendProbabilities(gs, ns CWDist, vSlots int) (pGS, pNS float64, err error) {
	if len(gs) == 0 || len(ns) == 0 {
		return 0, 0, fmt.Errorf("analytic: empty CW distribution")
	}
	for cwGS, wGS := range gs {
		for i := 0; i <= cwGS; i++ {
			pI := wGS / float64(cwGS+1) // Pr[B_GS = i]
			// Eq 1: GS sends when B_GS ≤ B_NS + v + 1 ⇔ B_NS ≥ i − v − 1.
			pGS += pI * mixAtLeast(ns, i-vSlots-1)
			// Eq 2: NS sends when B_NS ≤ B_GS − v + 1 = i − v + 1.
			pNS += pI * mixAtMost(ns, i-vSlots+1)
		}
	}
	return pGS, pNS, nil
}

// SendingRatio reports GS's share of transmissions, pGS/(pGS+pNS) — the
// quantity Fig 3 plots against the measured RTS ratio.
func SendingRatio(gs, ns CWDist, vSlots int) (float64, error) {
	pGS, pNS, err := SendProbabilities(gs, ns, vSlots)
	if err != nil {
		return 0, err
	}
	if pGS+pNS == 0 {
		return 0, fmt.Errorf("analytic: both send probabilities zero")
	}
	return pGS / (pGS + pNS), nil
}

// --- Table III: BER → FER ------------------------------------------------

// Error-unit counts reproducing Table III exactly (see DESIGN.md §2).
const (
	UnitsACKCTS  = 38
	UnitsRTS     = 44
	UnitsTCPACK  = 112
	UnitsTCPData = 1130
)

// FER evaluates the Table III error model: 1 − (1 − BER)^units.
func FER(ber float64, units int) float64 {
	if ber <= 0 || units <= 0 {
		return 0
	}
	if ber >= 1 {
		return 1
	}
	return 1 - math.Pow(1-ber, float64(units))
}

// FERRow is one Table III row.
type FERRow struct {
	BER     float64
	ACKCTS  float64
	RTS     float64
	TCPACK  float64
	TCPData float64
}

// TableIII evaluates the model at the paper's five BER operating points.
func TableIII() []FERRow {
	bers := []float64{1e-5, 2e-4, 3.2e-4, 4.4e-4, 8e-4}
	rows := make([]FERRow, 0, len(bers))
	for _, ber := range bers {
		rows = append(rows, FERRow{
			BER:     ber,
			ACKCTS:  FER(ber, UnitsACKCTS),
			RTS:     FER(ber, UnitsRTS),
			TCPACK:  FER(ber, UnitsTCPACK),
			TCPData: FER(ber, UnitsTCPData),
		})
	}
	return rows
}

// --- Table I: address preservation under memoryless corruption -----------

// AddrPreservation reports, for a frame of frameBytes with independent
// per-byte corruption probability p, the probability that (a) the 6-byte
// destination address is intact given the frame is corrupted and (b) both
// 6-byte addresses are intact given the destination is. A near-one result
// for realistic sizes is what makes fake ACKs feasible (Table I).
func AddrPreservation(p float64, frameBytes int) (dstGivenCorrupted, srcGivenDst float64) {
	if p <= 0 || frameBytes <= 16 {
		return 1, 1
	}
	q := 1 - p
	pFrame := 1 - math.Pow(q, float64(frameBytes))
	if pFrame == 0 {
		return 1, 1
	}
	// Dst intact AND frame corrupted: dst clean, some other byte hit.
	dstClean := math.Pow(q, 6)
	restHit := 1 - math.Pow(q, float64(frameBytes-6))
	dstGivenCorrupted = dstClean * restHit / pFrame
	// Src intact given dst intact and frame corrupted: among the
	// remaining frameBytes−6 bytes, src's 6 clean and some other hit.
	srcClean := math.Pow(q, 6)
	rest2Hit := 1 - math.Pow(q, float64(frameBytes-12))
	srcGivenDst = srcClean * rest2Hit / restHit
	return dstGivenCorrupted, srcGivenDst
}
