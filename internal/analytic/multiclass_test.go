package analytic

import (
	"math"
	"testing"

	"greedy80211/internal/phys"
)

func fairClass(n int) Class {
	p := phys.Params80211B()
	return Class{
		Name: "fair", N: n,
		Chain:        Chain{CWMin: p.CWMin, CWMax: p.CWMax},
		PayloadBytes: 1024, OverheadBytes: 28,
	}
}

func fairModel(n int) Model {
	return Model{
		Params:    phys.Params80211B(),
		Classes:   []Class{fairClass(n)},
		UseRTSCTS: true,
	}
}

// One symmetric, unperturbed, infinite-retry class must reproduce the
// scalar Bianchi Saturation model: same fixed point, same throughput.
func TestMultiClassReducesToSaturation(t *testing.T) {
	for _, band := range []phys.Params{phys.Params80211B(), phys.Params80211A()} {
		for _, rts := range []bool{true, false} {
			for _, n := range []int{1, 2, 4, 8, 32} {
				m := Model{
					Params: band,
					Classes: []Class{{
						Name: "fair", N: n,
						Chain:        Chain{CWMin: band.CWMin, CWMax: band.CWMax},
						PayloadBytes: 1024, OverheadBytes: 28,
					}},
					UseRTSCTS: rts,
				}
				got, err := m.Solve()
				if err != nil {
					t.Fatalf("n=%d: %v", n, err)
				}
				want, err := Saturation(SaturationConfig{
					Stations: n, Params: band,
					PayloadBytes: 1024, OverheadBytes: 28, UseRTSCTS: rts,
				})
				if err != nil {
					t.Fatal(err)
				}
				c := got.Classes[0]
				if rel(c.Tau, want.Tau) > 1e-6 {
					t.Errorf("band %v rts=%v n=%d: tau %v != %v", band.CWMin, rts, n, c.Tau, want.Tau)
				}
				if rel(c.PCollision, want.PCollision) > 1e-5 && math.Abs(c.PCollision-want.PCollision) > 1e-9 {
					t.Errorf("band %v rts=%v n=%d: pc %v != %v", band.CWMin, rts, n, c.PCollision, want.PCollision)
				}
				if rel(c.PerStationBps, want.PerStationBps) > 1e-6 {
					t.Errorf("band %v rts=%v n=%d: per-station %v != %v", band.CWMin, rts, n, c.PerStationBps, want.PerStationBps)
				}
			}
		}
	}
}

func rel(a, b float64) float64 {
	if b == 0 {
		return math.Abs(a)
	}
	return math.Abs(a-b) / math.Abs(b)
}

func TestMultiClassSingleStationDegenerate(t *testing.T) {
	res, err := fairModel(1).Solve()
	if err != nil {
		t.Fatal(err)
	}
	c := res.Classes[0]
	if c.PCollision != 0 {
		t.Errorf("lone station collides: %v", c.PCollision)
	}
	if c.AvgCW != 31 {
		t.Errorf("lone station AvgCW %v, want 31", c.AvgCW)
	}
	if mbps := c.PerStationBps / 1e6; mbps < 3.0 || mbps > 4.2 {
		t.Errorf("lone station %v Mbps, want ≈3.5", mbps)
	}
}

// NAV inflation must monotonically starve the fair class and hand the
// channel to the greedy one, approaching the solo ceiling.
func TestNAVInflationStarvesVictims(t *testing.T) {
	solo, err := fairModel(1).Solve()
	if err != nil {
		t.Fatal(err)
	}
	prevVictim := math.Inf(1)
	prevGreedy := 0.0
	for _, v := range []int{0, 10, 30, 50, 100, 500} {
		m := fairModel(1)
		greedy := fairClass(1)
		greedy.Name = "greedy"
		greedy.InflateSlots = v
		m.Classes = append(m.Classes, greedy)
		res, err := m.Solve()
		if err != nil {
			t.Fatalf("v=%d: %v", v, err)
		}
		victim := res.Class("fair").PerStationBps
		gr := res.Class("greedy").PerStationBps
		if victim > prevVictim+1 { // +1 bps float slack
			t.Errorf("v=%d: victim goodput rose to %v", v, victim)
		}
		if gr < prevGreedy-1 {
			t.Errorf("v=%d: greedy goodput fell to %v", v, gr)
		}
		prevVictim, prevGreedy = victim, gr
		if v == 500 {
			if victim > 0.01*solo.TotalBps {
				t.Errorf("v=500: victim still gets %v bps", victim)
			}
			if rel(gr, solo.TotalBps) > 0.1 {
				t.Errorf("v=500: greedy %v far from solo ceiling %v", gr, solo.TotalBps)
			}
		}
	}
}

// Fake-ACK suppression pins the greedy chain at CWmin while the true
// collision probability still destroys frames.
func TestFakeACKSuppression(t *testing.T) {
	p := phys.Params80211B()
	base := Model{
		Params: p,
		Hidden: true, VulnSlots: 25,
		Classes: []Class{
			{Name: "honest", N: 1, Chain: Chain{CWMin: p.CWMin, CWMax: p.CWMax, RetryLimit: 7},
				PayloadBytes: 1024, OverheadBytes: 28},
			{Name: "greedy", N: 1, Chain: Chain{CWMin: p.CWMin, CWMax: p.CWMax, RetryLimit: 7},
				PayloadBytes: 1024, OverheadBytes: 28, SuppressCWGrowth: 1},
		},
	}
	res, err := base.Solve()
	if err != nil {
		t.Fatal(err)
	}
	gr := res.Class("greedy")
	honest := res.Class("honest")
	if gr.AvgCW != 31 {
		t.Errorf("fully suppressed greedy AvgCW %v, want 31", gr.AvgCW)
	}
	if gr.PPerceived != 0 {
		t.Errorf("fully suppressed greedy perceives %v", gr.PPerceived)
	}
	if gr.PCollision <= 0 {
		t.Errorf("greedy's true collision prob %v should stay positive", gr.PCollision)
	}
	if honest.AvgCW <= gr.AvgCW {
		t.Errorf("honest AvgCW %v not ballooned above greedy %v", honest.AvgCW, gr.AvgCW)
	}
	if honest.PerStationBps >= gr.PerStationBps {
		t.Errorf("honest %v bps not starved below greedy %v", honest.PerStationBps, gr.PerStationBps)
	}

	// Zero suppression restores symmetry.
	sym := base
	sym.Classes = append([]Class{}, base.Classes...)
	sym.Classes[1].SuppressCWGrowth = 0
	res2, err := sym.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if rel(res2.Classes[0].PerStationBps, res2.Classes[1].PerStationBps) > 1e-9 {
		t.Errorf("symmetric hidden classes diverge: %v vs %v",
			res2.Classes[0].PerStationBps, res2.Classes[1].PerStationBps)
	}
}

func TestMultiClassConvergenceGuards(t *testing.T) {
	m := fairModel(8)
	m.MaxIter = 2
	m.Tol = 1e-14
	if _, err := m.Solve(); err == nil {
		t.Error("2-iteration cap converged implausibly")
	}

	bad := fairModel(2)
	bad.Damping = 1.5
	if _, err := bad.Solve(); err == nil {
		t.Error("damping 1.5 accepted")
	}

	for _, mutate := range []func(*Model){
		func(m *Model) { m.Classes = nil },
		func(m *Model) { m.Classes[0].N = 0 },
		func(m *Model) { m.Classes[0].PayloadBytes = 0 },
		func(m *Model) { m.Classes[0].OverheadBytes = -1 },
		func(m *Model) { m.Classes[0].SuppressCWGrowth = 1.5 },
		func(m *Model) { m.Classes[0].Chain.CWMin = 0 },
		func(m *Model) {
			m.Classes = append(m.Classes, m.Classes[0], m.Classes[0])
			m.Classes[1].InflateSlots = 10
			m.Classes[2].InflateSlots = 10
		},
		func(m *Model) {
			m.Hidden = true
			m.Classes = append(m.Classes, m.Classes[0])
			m.Classes[1].InflateSlots = 10
		},
	} {
		m := fairModel(2)
		mutate(&m)
		if _, err := m.Solve(); err == nil {
			t.Errorf("invalid model accepted: %+v", m)
		}
	}
}

// Table-driven sweep over population, CW geometry, retry limit, and
// inflation: every solution must stay physical and converged.
func TestMultiClassSweepStaysPhysical(t *testing.T) {
	p := phys.Params80211B()
	for _, n := range []int{1, 2, 5, 20} {
		for _, cw := range []struct{ lo, hi int }{{15, 1023}, {31, 1023}, {31, 31}, {7, 255}} {
			for _, retry := range []int{0, 1, 4, 7} {
				for _, v := range []int{0, 16, 64} {
					m := Model{
						Params:    p,
						UseRTSCTS: true,
						Classes: []Class{
							{Name: "fair", N: n, Chain: Chain{CWMin: cw.lo, CWMax: cw.hi, RetryLimit: retry},
								PayloadBytes: 1024, OverheadBytes: 28},
							{Name: "greedy", N: 1, Chain: Chain{CWMin: cw.lo, CWMax: cw.hi, RetryLimit: retry},
								PayloadBytes: 1024, OverheadBytes: 28, InflateSlots: v},
						},
					}
					res, err := m.Solve()
					if err != nil {
						t.Fatalf("n=%d cw=%v retry=%d v=%d: %v", n, cw, retry, v, err)
					}
					if res.Residual >= 1e-10 {
						t.Errorf("n=%d cw=%v retry=%d v=%d: residual %v", n, cw, retry, v, res.Residual)
					}
					total := 0.0
					for _, c := range res.Classes {
						if !(c.Tau > 0 && c.Tau <= 1) || !(c.TauEffective >= 0 && c.TauEffective <= 1) {
							t.Errorf("n=%d cw=%v retry=%d v=%d: tau %v/%v unphysical", n, cw, retry, v, c.Tau, c.TauEffective)
						}
						if c.PCollision < 0 || c.PCollision >= 1 || math.IsNaN(c.PCollision) {
							t.Errorf("n=%d cw=%v retry=%d v=%d: pc %v unphysical", n, cw, retry, v, c.PCollision)
						}
						if c.PerStationBps < 0 || math.IsNaN(c.PerStationBps) {
							t.Errorf("n=%d cw=%v retry=%d v=%d: goodput %v", n, cw, retry, v, c.PerStationBps)
						}
						if c.AirtimeShare < 0 || c.AirtimeShare > 1 {
							t.Errorf("n=%d cw=%v retry=%d v=%d: airtime %v", n, cw, retry, v, c.AirtimeShare)
						}
						total += c.PerStationBps * float64(c.N)
					}
					if total > float64(p.DataRateBps) {
						t.Errorf("n=%d cw=%v retry=%d v=%d: total %v exceeds channel rate", n, cw, retry, v, total)
					}
				}
			}
		}
	}
}
