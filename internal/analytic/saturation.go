package analytic

import (
	"fmt"
	"math"

	"greedy80211/internal/phys"
	"greedy80211/internal/sim"
)

// This file models DCF saturation throughput for n contending stations
// (Bianchi, JSAC 2000, adapted to the paper's RTS/CTS configuration). It
// predicts the fair baselines every figure starts from — e.g. the
// per-flow ≈1.85 Mbps of Fig 1's zero-inflation point — and, with the
// NAV-inflation model of Equations 1–2, brackets what a greedy receiver
// stands to gain: the difference between a fair 1/n share and the whole
// saturation throughput.

// SaturationConfig describes the symmetric saturated network.
type SaturationConfig struct {
	// Stations is the number of contending senders, n ≥ 1.
	Stations int
	// Params carries band constants.
	Params phys.Params
	// PayloadBytes is the application payload per data frame.
	PayloadBytes int
	// OverheadBytes is the per-frame transport/network overhead carried
	// on the air in addition to the payload (28 for UDP/IP here).
	OverheadBytes int
	// UseRTSCTS selects the protected exchange.
	UseRTSCTS bool
	// MaxBackoffStages bounds CW doubling (derived from CWmin/CWmax when
	// zero).
	MaxBackoffStages int
}

// SaturationResult is the model's fixed point and throughput prediction.
type SaturationResult struct {
	// Tau is each station's per-slot transmission probability.
	Tau float64
	// PCollision is the conditional collision probability a transmitting
	// station sees.
	PCollision float64
	// ThroughputBps is aggregate application throughput; PerStationBps is
	// the fair share.
	ThroughputBps float64
	PerStationBps float64
}

// Saturation solves Bianchi's fixed point and evaluates the throughput.
func Saturation(cfg SaturationConfig) (SaturationResult, error) {
	if cfg.Stations < 1 {
		return SaturationResult{}, fmt.Errorf("analytic: %d stations", cfg.Stations)
	}
	if cfg.PayloadBytes <= 0 {
		return SaturationResult{}, fmt.Errorf("analytic: payload %d", cfg.PayloadBytes)
	}
	if cfg.OverheadBytes < 0 {
		return SaturationResult{}, fmt.Errorf("analytic: negative overhead %d bytes", cfg.OverheadBytes)
	}
	p := cfg.Params
	w := float64(p.CWMin + 1)
	m := cfg.MaxBackoffStages
	if m == 0 {
		for cw := p.CWMin; cw < p.CWMax; cw = 2*(cw+1) - 1 {
			m++
		}
	}
	n := float64(cfg.Stations)

	// Fixed point: tau(pc) from Bianchi's backoff chain; pc = 1-(1-tau)^(n-1).
	tauOf := func(pc float64) float64 {
		num := 2 * (1 - 2*pc)
		den := (1-2*pc)*(w+1) + pc*w*(1-math.Pow(2*pc, float64(m)))
		return num / den
	}
	var tau, pc float64
	pc = 0.1
	for i := 0; i < 200; i++ {
		tau = tauOf(pc)
		next := 1 - math.Pow(1-tau, n-1)
		if math.Abs(next-pc) < 1e-12 {
			pc = next
			break
		}
		pc = 0.5*pc + 0.5*next
	}
	tau = tauOf(pc)
	// For extreme populations the damped iteration leaves Bianchi's
	// contraction region: tau underflows to 0 (or goes negative past
	// pc = 1/2's pole) and the throughput expression silently returns
	// garbage. Reject any fixed point outside the physical range.
	if math.IsNaN(tau) || math.IsNaN(pc) || tau <= 0 || tau > 1 || pc < 0 || pc >= 1 {
		return SaturationResult{}, fmt.Errorf(
			"analytic: fixed point left the physical range (tau=%v, pc=%v) for %d stations", tau, pc, cfg.Stations)
	}

	// Slot-time accounting.
	pTr := 1 - math.Pow(1-tau, n)        // some transmission in a slot
	pS := n * tau * math.Pow(1-tau, n-1) // exactly one (success)
	pSGivenTr := 0.0                     // success among busy slots
	if pTr > 0 {
		pSGivenTr = pS / pTr
	}

	macBytes := cfg.PayloadBytes + cfg.OverheadBytes + phys.DataHeaderBytes
	dataAir := p.TxDuration(macBytes, p.DataRateBps)
	ackAir := p.TxDuration(phys.ACKFrameBytes, p.BasicRateBps)
	rtsAir := p.TxDuration(phys.RTSFrameBytes, p.BasicRateBps)
	ctsAir := p.TxDuration(phys.CTSFrameBytes, p.BasicRateBps)

	var tSuccess, tCollision sim.Time
	if cfg.UseRTSCTS {
		tSuccess = rtsAir + p.SIFS + ctsAir + p.SIFS + dataAir + p.SIFS + ackAir + p.DIFS()
		tCollision = rtsAir + p.CTSTimeout() + p.DIFS()
	} else {
		tSuccess = dataAir + p.SIFS + ackAir + p.DIFS()
		tCollision = dataAir + p.ACKTimeout() + p.DIFS()
	}
	sigma := p.SlotTime

	eSlot := (1-pTr)*float64(sigma) +
		pTr*pSGivenTr*float64(tSuccess) +
		pTr*(1-pSGivenTr)*float64(tCollision)
	if eSlot <= 0 {
		return SaturationResult{}, fmt.Errorf("analytic: degenerate slot time")
	}
	bitsPerSuccess := float64(cfg.PayloadBytes * 8)
	throughput := pTr * pSGivenTr * bitsPerSuccess / (eSlot / float64(sim.Second))

	return SaturationResult{
		Tau:           tau,
		PCollision:    pc,
		ThroughputBps: throughput,
		PerStationBps: throughput / n,
	}, nil
}

// GreedyGainBound reports the maximum goodput multiplier a greedy
// receiver can extract in an n-station saturated network: the whole
// saturation throughput of a single unopposed station divided by the fair
// per-station share. This is the ceiling the NAV-inflation figures
// approach (e.g. ×2 for 2 pairs, ×8 for Fig 6's 8 flows).
func GreedyGainBound(cfg SaturationConfig) (float64, error) {
	if cfg.Stations < 1 {
		return 0, fmt.Errorf("analytic: %d stations", cfg.Stations)
	}
	fair, err := Saturation(cfg)
	if err != nil {
		return 0, err
	}
	solo := cfg
	solo.Stations = 1
	alone, err := Saturation(solo)
	if err != nil {
		return 0, err
	}
	return alone.ThroughputBps / fair.PerStationBps, nil
}
