package analytic

import (
	"math"
	"testing"

	"greedy80211/internal/phys"
)

// bianchiTau is the closed-form JSAC-2000 tau the scalar Saturation model
// uses: W is the CWmin+1 window, m the number of CW doublings.
func bianchiTau(p float64, cwMin, cwMax int) float64 {
	w := float64(cwMin + 1)
	m := 0
	for cw := cwMin; cw < cwMax; cw = 2*(cw+1) - 1 {
		m++
	}
	num := 2 * (1 - 2*p)
	den := (1-2*p)*(w+1) + p*w*(1-math.Pow(2*p, float64(m)))
	return num / den
}

func TestChainReducesToBianchi(t *testing.T) {
	// The infinite-retry chain must reproduce Bianchi's closed form to
	// machine precision across failure probabilities and bands.
	for _, band := range []phys.Params{phys.Params80211B(), phys.Params80211A()} {
		c := Chain{CWMin: band.CWMin, CWMax: band.CWMax}
		for _, q := range []float64{0, 0.01, 0.05, 0.1, 0.2, 0.3, 0.4, 0.45, 0.49, 0.6, 0.9} {
			got, err := c.Solve(q)
			if err != nil {
				t.Fatalf("Solve(%v): %v", q, err)
			}
			want := bianchiTau(q, band.CWMin, band.CWMax)
			if math.Abs(got.Tau-want) > 1e-12*want {
				t.Errorf("CW [%d,%d] q=%v: chain tau %v != Bianchi %v",
					band.CWMin, band.CWMax, q, got.Tau, want)
			}
		}
	}
}

func TestChainZeroFailure(t *testing.T) {
	c := Chain{CWMin: 31, CWMax: 1023}
	r, err := c.Solve(0)
	if err != nil {
		t.Fatal(err)
	}
	if want := 2.0 / 33.0; math.Abs(r.Tau-want) > 1e-15 {
		t.Errorf("tau at q=0: %v, want %v", r.Tau, want)
	}
	if r.AvgCW != 31 {
		t.Errorf("AvgCW at q=0: %v, want 31 (never leaves CWmin)", r.AvgCW)
	}
	if r.AvgBackoffSlots != 15.5 {
		t.Errorf("AvgBackoffSlots at q=0: %v, want 15.5", r.AvgBackoffSlots)
	}
	if len(r.Dist) != 1 || math.Abs(r.Dist[31]-1) > 1e-15 {
		t.Errorf("Dist at q=0: %v, want all mass at 31", r.Dist)
	}
	if r.DropProb != 0 {
		t.Errorf("infinite chain DropProb = %v", r.DropProb)
	}
}

func TestChainFiniteRetry(t *testing.T) {
	// One attempt: the window never doubles regardless of q.
	one := Chain{CWMin: 31, CWMax: 1023, RetryLimit: 1}
	r, err := one.Solve(0.4)
	if err != nil {
		t.Fatal(err)
	}
	if r.AvgCW != 31 || math.Abs(r.Tau-2.0/33.0) > 1e-15 {
		t.Errorf("R=1 chain: tau %v AvgCW %v, want CWmin-pinned", r.Tau, r.AvgCW)
	}
	if want := 0.4; math.Abs(r.DropProb-want) > 1e-15 {
		t.Errorf("R=1 DropProb = %v, want %v", r.DropProb, want)
	}

	// Finite retry truncates the deep (large-CW) stages, so at equal q a
	// shorter chain is more aggressive: larger tau, smaller average CW.
	q := 0.3
	prevTau, prevCW := 0.0, 1e18
	for _, limit := range []int{7, 4, 2, 1} {
		c := Chain{CWMin: 31, CWMax: 1023, RetryLimit: limit}
		r, err := c.Solve(q)
		if err != nil {
			t.Fatal(err)
		}
		if r.Tau <= prevTau {
			t.Errorf("R=%d: tau %v did not grow as retries shrank", limit, r.Tau)
		}
		if r.AvgCW >= prevCW {
			t.Errorf("R=%d: AvgCW %v did not shrink as retries shrank", limit, r.AvgCW)
		}
		if want := math.Pow(q, float64(limit)); math.Abs(r.DropProb-want) > 1e-15 {
			t.Errorf("R=%d DropProb = %v, want %v", limit, r.DropProb, want)
		}
		prevTau, prevCW = r.Tau, r.AvgCW
	}
}

func TestChainAvgCWMonotoneInFailure(t *testing.T) {
	c := Chain{CWMin: 15, CWMax: 1023, RetryLimit: 7}
	prev := -1.0
	for q := 0.0; q < 0.95; q += 0.05 {
		r, err := c.Solve(q)
		if err != nil {
			t.Fatalf("q=%v: %v", q, err)
		}
		if r.AvgCW <= prev {
			t.Errorf("AvgCW not monotone at q=%v: %v <= %v", q, r.AvgCW, prev)
		}
		if sum := distSum(r.Dist); math.Abs(sum-1) > 1e-12 {
			t.Errorf("Dist at q=%v sums to %v", q, sum)
		}
		prev = r.AvgCW
	}
}

func distSum(d CWDist) float64 {
	var s float64
	for _, p := range d {
		s += p
	}
	return s
}

func TestChainSolveGuards(t *testing.T) {
	good := Chain{CWMin: 31, CWMax: 1023}
	for _, q := range []float64{math.NaN(), -0.1, 1, 1.5} {
		if _, err := good.Solve(q); err == nil {
			t.Errorf("q=%v accepted", q)
		}
	}
	for _, c := range []Chain{
		{CWMin: 0, CWMax: 1023},
		{CWMin: 31, CWMax: 15},
		{CWMin: 31, CWMax: 1023, RetryLimit: -1},
	} {
		if _, err := c.Solve(0.1); err == nil {
			t.Errorf("chain %+v accepted", c)
		}
	}
}
