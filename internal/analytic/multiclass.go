package analytic

import (
	"fmt"
	"math"

	"greedy80211/internal/phys"
	"greedy80211/internal/sim"
)

// This file couples per-class backoff chains (markov.go) into a
// heterogeneous fixed point: a population of fair stations plus greedy
// classes whose dynamics are perturbed by NAV inflation (competitors
// frozen for the inflated reservation, per Equations 1–2) or fake-ACK
// CW-reset suppression (the chain sees only the unmasked fraction of its
// real collisions). The solver iterates per-class collision probabilities
// with damping and hard convergence guards, then evaluates slot-time
// accounting to per-class goodput and airtime. MODEL.md derives the
// equations and reports accuracy against simulation.

// Class is one homogeneous station population in the model.
type Class struct {
	// Name labels the class in results ("fair", "greedy", ...).
	Name string
	// N is the number of stations in the class, ≥ 1.
	N int
	// Chain is the class's backoff chain.
	Chain Chain
	// PayloadBytes is application payload per data frame; OverheadBytes
	// is transport/network framing carried on the air above it (28 for
	// UDP/IP, 40 for TCP/IP).
	PayloadBytes, OverheadBytes int
	// InflateSlots, when positive, marks this class greedy via NAV
	// inflation: its exchanges carry a reservation that freezes every
	// other station for InflateSlots backoff slots, giving this class
	// the Equations 1–2 head start in every contention round. At most
	// one class may inflate.
	InflateSlots int
	// SuppressCWGrowth in [0, 1] is the fraction of this class's real
	// transmission failures masked by a fake-ACK greedy receiver: the
	// backoff chain perceives only (1−SuppressCWGrowth) of them, so at 1
	// the window never leaves CWmin while the true collision probability
	// still destroys the frames.
	SuppressCWGrowth float64
	// RaceExempt marks a class on the greedy side of a NAV-inflation
	// attack that is not itself the inflator — e.g. the greedy TCP
	// flow's reverse-ACK stream, which rides inside the inflated
	// reservations instead of being frozen by them.
	RaceExempt bool
}

// Model is a heterogeneous saturated DCF network.
type Model struct {
	// Params carries band constants.
	Params phys.Params
	// Classes is the station mix.
	Classes []Class
	// UseRTSCTS selects the protected exchange for every class.
	UseRTSCTS bool
	// Hidden switches the collision structure to mutually hidden
	// senders: stations cannot carrier-sense each other, so a frame is
	// lost when any competitor begins transmitting inside its
	// vulnerability window rather than in the same slot.
	Hidden bool
	// VulnSlots is the hidden-mode vulnerability window in backoff
	// slots. Zero derives 2×(data airtime)/slot — two full frame
	// airtimes, the textbook hidden-terminal window. The Predict
	// adapters install a smaller calibrated value because capture and
	// EIFS recovery in the simulator soften the textbook window (see
	// MODEL.md §5).
	VulnSlots int
	// MaxIter caps fixed-point iterations (default 1000), Tol is the
	// convergence residual on collision probabilities (default 1e-10),
	// Damping in (0, 1] is the update step (default 0.5).
	MaxIter int
	Tol     float64
	Damping float64
}

// ClassResult is the solved operating point of one class.
type ClassResult struct {
	Name string
	N    int
	// Tau is the class chain's per-slot transmission probability;
	// TauEffective folds in the NAV-inflation race (losers of the race
	// transmit proportionally less often).
	Tau, TauEffective float64
	// PCollision is the true per-attempt failure probability;
	// PPerceived is what the backoff chain sees after fake-ACK masking.
	PCollision, PPerceived float64
	// AvgCW and AvgBackoffSlots are draw-weighted chain averages, in
	// slots; DropProb is the retry-limit drop probability.
	AvgCW, AvgBackoffSlots, DropProb float64
	// PerStationBps is delivered application goodput per station;
	// AirtimeShare is the fraction of channel time spent on this
	// class's successful exchanges.
	PerStationBps float64
	AirtimeShare  float64
}

// ModelResult is the converged multi-class solution.
type ModelResult struct {
	Classes    []ClassResult
	TotalBps   float64
	Iterations int
	Residual   float64
}

// Class lookup by name; nil when absent.
func (r *ModelResult) Class(name string) *ClassResult {
	for i := range r.Classes {
		if r.Classes[i].Name == name {
			return &r.Classes[i]
		}
	}
	return nil
}

func (m Model) validate() error {
	if len(m.Classes) == 0 {
		return fmt.Errorf("analytic: model with no classes")
	}
	inflaters := 0
	for _, c := range m.Classes {
		if c.N < 1 {
			return fmt.Errorf("analytic: class %q has %d stations", c.Name, c.N)
		}
		if c.PayloadBytes <= 0 {
			return fmt.Errorf("analytic: class %q payload %d", c.Name, c.PayloadBytes)
		}
		if c.OverheadBytes < 0 {
			return fmt.Errorf("analytic: class %q overhead %d", c.Name, c.OverheadBytes)
		}
		if c.SuppressCWGrowth < 0 || c.SuppressCWGrowth > 1 {
			return fmt.Errorf("analytic: class %q CW suppression %v outside [0, 1]", c.Name, c.SuppressCWGrowth)
		}
		if err := c.Chain.validate(); err != nil {
			return err
		}
		if c.InflateSlots > 0 {
			inflaters++
		}
	}
	if inflaters > 1 {
		return fmt.Errorf("analytic: %d inflating classes, at most 1 supported", inflaters)
	}
	if m.Hidden && inflaters > 0 {
		return fmt.Errorf("analytic: hidden mode cannot combine with NAV inflation")
	}
	return nil
}

// exchangeTimes returns the success and collision durations of one
// class's data exchange.
func (m Model) exchangeTimes(c Class) (tSuccess, tCollision sim.Time) {
	p := m.Params
	macBytes := c.PayloadBytes + c.OverheadBytes + phys.DataHeaderBytes
	dataAir := p.TxDuration(macBytes, p.DataRateBps)
	ackAir := p.TxDuration(phys.ACKFrameBytes, p.BasicRateBps)
	if m.UseRTSCTS {
		rtsAir := p.TxDuration(phys.RTSFrameBytes, p.BasicRateBps)
		ctsAir := p.TxDuration(phys.CTSFrameBytes, p.BasicRateBps)
		tSuccess = rtsAir + p.SIFS + ctsAir + p.SIFS + dataAir + p.SIFS + ackAir + p.DIFS()
		tCollision = rtsAir + p.CTSTimeout() + p.DIFS()
	} else {
		tSuccess = dataAir + p.SIFS + ackAir + p.DIFS()
		tCollision = dataAir + p.ACKTimeout() + p.DIFS()
	}
	return tSuccess, tCollision
}

// raceScales evaluates the Equations 1–2 race between the inflating
// class and the pooled fair stations, returning the per-class factors by
// which NAV inflation rescales transmission rates: the victims' factor is
// pF(v)/pF(0), the rate at which any fair station still wins a contention
// round relative to the fair race.
func raceScales(classes []Class, chains []ChainResult) ([]float64, error) {
	scales := make([]float64, len(classes))
	for i := range scales {
		scales[i] = 1
	}
	g := -1
	for i, c := range classes {
		if c.InflateSlots > 0 {
			g = i
		}
	}
	if g < 0 {
		return scales, nil
	}
	// Pool the fair stations' CW mixtures, weighted by population.
	fair := make(CWDist)
	nFair := 0
	for i, c := range classes {
		if i == g || c.RaceExempt {
			continue
		}
		for _, cw := range chains[i].Dist.sortedCWs() {
			fair[cw] += chains[i].Dist[cw] * float64(c.N)
		}
		nFair += c.N
	}
	if nFair == 0 {
		return scales, nil // greedy alone: nothing to race
	}
	if err := fair.Normalize(); err != nil {
		return nil, err
	}
	// Round-win probabilities against the minimum of nFair fair draws.
	pFairWins := func(v int) float64 {
		var pF float64
		for _, cwG := range chains[g].Dist.sortedCWs() {
			wG := chains[g].Dist[cwG]
			for i := 0; i <= cwG; i++ {
				pI := wG / float64(cwG+1)
				// Some fair station sends when min(B_F) ≤ B_GS − v + 1
				// (Eq 2 with the head start v); the complement is every
				// fair draw ≥ B_GS − v + 2.
				term := 1 - math.Pow(mixAtLeast(fair, i-v+2), float64(nFair))
				if term > 0 {
					pF += pI * term
				}
			}
		}
		return pF
	}
	base := pFairWins(0)
	if base <= 0 {
		return nil, fmt.Errorf("analytic: degenerate NAV race (fair side never wins at v=0)")
	}
	// A head start can only hurt the fair side; clamp float residue.
	s := math.Min(1, math.Max(0, pFairWins(classes[g].InflateSlots)/base))
	for i, c := range classes {
		if i != g && !c.RaceExempt {
			scales[i] = s
		}
	}
	return scales, nil
}

// Solve runs the damped multi-class fixed point.
func (m Model) Solve() (*ModelResult, error) {
	if err := m.validate(); err != nil {
		return nil, err
	}
	maxIter := m.MaxIter
	if maxIter == 0 {
		maxIter = 1000
	}
	tol := m.Tol
	if tol == 0 {
		tol = 1e-10
	}
	damp := m.Damping
	if damp == 0 {
		damp = 0.5
	}
	if damp < 0 || damp > 1 {
		return nil, fmt.Errorf("analytic: damping %v outside (0, 1]", damp)
	}

	k := len(m.Classes)
	p := make([]float64, k) // true per-attempt collision probability
	for i := range p {
		p[i] = 0.1
	}
	chains := make([]ChainResult, k)
	tauEff := make([]float64, k)
	scales := make([]float64, k)

	vuln := 1
	if m.Hidden {
		vuln = m.VulnSlots
		if vuln == 0 {
			// Textbook default: twice the (largest) data exchange airtime.
			var longest sim.Time
			for _, c := range m.Classes {
				ts, _ := m.exchangeTimes(c)
				if ts > longest {
					longest = ts
				}
			}
			vuln = int(2 * int64(longest) / int64(m.Params.SlotTime))
		}
		if vuln < 1 {
			vuln = 1
		}
	}

	// One full sweep at damping d: chains at the perceived failure
	// probability, NAV-race rescaling, coupled collision update.
	step := func(d float64) (float64, error) {
		for i, c := range m.Classes {
			perceived := p[i] * (1 - c.SuppressCWGrowth)
			cr, err := c.Chain.Solve(perceived)
			if err != nil {
				return 0, fmt.Errorf("analytic: class %q: %w", c.Name, err)
			}
			chains[i] = cr
		}
		sc, err := raceScales(m.Classes, chains)
		if err != nil {
			return 0, err
		}
		copy(scales, sc)
		for i := range m.Classes {
			tauEff[i] = chains[i].Tau * scales[i]
		}
		gIdx := -1
		for i, c := range m.Classes {
			if c.InflateSlots > 0 {
				gIdx = i
			}
		}
		var residual float64
		for i, c := range m.Classes {
			exposure := 1.0
			for j, cj := range m.Classes {
				others := cj.N
				if i == j {
					others--
				}
				t := tauEff[j]
				// A victim transmits only on contention rounds it won —
				// rounds where the inflator's counter is still at least
				// the head start away — so the inflator's threat to a
				// victim is suppressed by the victim's own race factor.
				if j == gIdx && i != gIdx && scales[i] < 1 {
					t *= scales[i]
				}
				exposure *= math.Pow(1-t, float64(vuln*others))
			}
			next := 1 - exposure
			if next < 0 && next > -1e-9 {
				next = 0 // float residue from the exposure product
			}
			if math.IsNaN(next) || next < 0 || next >= 1 {
				return 0, fmt.Errorf("analytic: collision probability diverged to %v for class %q", next, c.Name)
			}
			upd := (1-d)*p[i] + d*next
			if diff := math.Abs(upd - p[i]); diff > residual {
				residual = diff
			}
			p[i] = upd
		}
		return residual, nil
	}

	var residual float64
	iters := 0
	for ; iters < maxIter; iters++ {
		var err error
		residual, err = step(damp)
		if err != nil {
			return nil, err
		}
		if residual < tol {
			break
		}
	}
	if math.IsNaN(residual) {
		return nil, fmt.Errorf("analytic: fixed point residual is NaN")
	}
	if residual >= tol {
		return nil, fmt.Errorf("analytic: fixed point did not converge in %d iterations (residual %.3g, tol %.3g)", maxIter, residual, tol)
	}
	// Polish: a few undamped sweeps land degenerate cases (lone station,
	// zero perturbation) exactly on the fixed point instead of a damped
	// epsilon away from it. The map is contractive this close to the
	// solution, so these can only tighten the residual.
	for k := 0; k < 3; k++ {
		if _, err := step(1); err != nil {
			return nil, err
		}
	}

	res := &ModelResult{Iterations: iters + 1, Residual: residual}
	sigma := float64(m.Params.SlotTime)

	if m.Hidden {
		// Hidden senders share no slot clock: account each station's own
		// renewal timeline (backoff slots interleaved with attempts).
		for i, c := range m.Classes {
			ts, _ := m.exchangeTimes(c)
			eSlot := (1-tauEff[i])*sigma + tauEff[i]*float64(ts)
			bits := float64(c.PayloadBytes * 8)
			good := tauEff[i] * (1 - p[i]) * bits / (eSlot / float64(sim.Second))
			res.Classes = append(res.Classes, ClassResult{
				Name: c.Name, N: c.N,
				Tau: chains[i].Tau, TauEffective: tauEff[i],
				PCollision: p[i], PPerceived: p[i] * (1 - c.SuppressCWGrowth),
				AvgCW: chains[i].AvgCW, AvgBackoffSlots: chains[i].AvgBackoffSlots,
				DropProb:      chains[i].DropProb,
				PerStationBps: good,
				AirtimeShare:  tauEff[i] * float64(ts) / eSlot,
			})
			res.TotalBps += good * float64(c.N)
		}
		return res, nil
	}

	// Shared-medium slot accounting (Bianchi, heterogeneous).
	pIdle := 1.0
	for i, c := range m.Classes {
		pIdle *= math.Pow(1-tauEff[i], float64(c.N))
	}
	pS := make([]float64, k)
	var pSuccTotal, attemptRate, tCollAvg float64
	for i, c := range m.Classes {
		s := float64(c.N) * tauEff[i] * math.Pow(1-tauEff[i], float64(c.N-1))
		for j, cj := range m.Classes {
			if j != i {
				s *= math.Pow(1-tauEff[j], float64(cj.N))
			}
		}
		pS[i] = s
		pSuccTotal += s
		_, tc := m.exchangeTimes(c)
		attemptRate += float64(c.N) * tauEff[i]
		tCollAvg += float64(c.N) * tauEff[i] * float64(tc)
	}
	if attemptRate > 0 {
		tCollAvg /= attemptRate
	}
	pColl := 1 - pIdle - pSuccTotal
	if pColl < 0 {
		pColl = 0
	}
	eSlot := pIdle * sigma
	for i, c := range m.Classes {
		ts, _ := m.exchangeTimes(c)
		eSlot += pS[i] * float64(ts)
	}
	eSlot += pColl * tCollAvg
	if eSlot <= 0 || math.IsNaN(eSlot) {
		return nil, fmt.Errorf("analytic: degenerate expected slot time %v", eSlot)
	}
	for i, c := range m.Classes {
		ts, _ := m.exchangeTimes(c)
		bits := float64(c.PayloadBytes * 8)
		good := pS[i] / float64(c.N) * bits / (eSlot / float64(sim.Second))
		res.Classes = append(res.Classes, ClassResult{
			Name: c.Name, N: c.N,
			Tau: chains[i].Tau, TauEffective: tauEff[i],
			PCollision: p[i], PPerceived: p[i] * (1 - c.SuppressCWGrowth),
			AvgCW: chains[i].AvgCW, AvgBackoffSlots: chains[i].AvgBackoffSlots,
			DropProb:      chains[i].DropProb,
			PerStationBps: good,
			AirtimeShare:  pS[i] * float64(ts) / eSlot,
		})
		res.TotalBps += good * float64(c.N)
	}
	return res, nil
}
