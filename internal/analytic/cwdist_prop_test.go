package analytic

import (
	"math"
	"math/rand"
	"testing"
)

// Property: FromSamples already returns a normalized distribution, so a
// further Normalize must be the identity (and must not error); and
// Single(cw) must equal the one-sample FromSamples.
func TestCWDistNormalizeFromSamplesRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(0x5eed))
	cwPool := []int{0, 7, 15, 31, 63, 127, 255, 511, 1023}
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(500)
		samples := make([]int, n)
		for i := range samples {
			samples[i] = cwPool[rng.Intn(len(cwPool))]
		}
		d := FromSamples(samples)
		if sum := distSum(d); math.Abs(sum-1) > 1e-9 {
			t.Fatalf("trial %d: FromSamples sums to %v", trial, sum)
		}
		before := make(CWDist, len(d))
		for cw, p := range d {
			before[cw] = p
		}
		if err := d.Normalize(); err != nil {
			t.Fatalf("trial %d: Normalize of normalized dist errored: %v", trial, err)
		}
		if len(d) != len(before) {
			t.Fatalf("trial %d: Normalize changed support size", trial)
		}
		for cw, p := range before {
			if math.Abs(d[cw]-p) > 1e-12 {
				t.Fatalf("trial %d: Normalize moved mass at cw=%d: %v -> %v", trial, cw, p, d[cw])
			}
		}
	}
}

func TestSingleMatchesOneSampleFromSamples(t *testing.T) {
	for _, cw := range []int{0, 1, 31, 1023} {
		s := Single(cw)
		f := FromSamples([]int{cw})
		if len(s) != 1 || len(f) != 1 || s[cw] != 1 || f[cw] != 1 {
			t.Errorf("cw=%d: Single %v != FromSamples %v", cw, s, f)
		}
	}
}

func TestCWDistNormalizeRejectsInvalid(t *testing.T) {
	for name, d := range map[string]CWDist{
		"empty":        {},
		"zero mass":    {31: 0},
		"negative cw":  {-1: 1},
		"negative wgt": {31: -0.5, 63: 1.5},
	} {
		if err := d.Normalize(); err == nil {
			t.Errorf("%s distribution accepted", name)
		}
	}
}
