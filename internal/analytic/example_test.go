package analytic_test

import (
	"fmt"

	"greedy80211/internal/analytic"
	"greedy80211/internal/phys"
)

// The paper's Equations 1–2: how a greedy receiver's NAV inflation (v
// timeslots of head start for its sender) skews the channel-acquisition
// ratio between the greedy and normal senders.
func ExampleSendingRatio() {
	gs := analytic.Single(31) // greedy flow's sender stays at CWmin
	ns := analytic.Single(31)
	for _, v := range []int{0, 8, 16, 28, 33} {
		ratio, err := analytic.SendingRatio(gs, ns, v)
		if err != nil {
			fmt.Println("error:", err)
			return
		}
		fmt.Printf("v=%2d slots: GS sends %.0f%% of the time\n", v, 100*ratio)
	}
	// Output:
	// v= 0 slots: GS sends 50% of the time
	// v= 8 slots: GS sends 70% of the time
	// v=16 slots: GS sends 86% of the time
	// v=28 slots: GS sends 99% of the time
	// v=33 slots: GS sends 100% of the time
}

// Table III's closed form: the frame error rate each frame type sees at a
// given bit error rate.
func ExampleFER() {
	ber := 2e-4
	fmt.Printf("ACK/CTS: %.4f\n", analytic.FER(ber, analytic.UnitsACKCTS))
	fmt.Printf("TCP data: %.3f\n", analytic.FER(ber, analytic.UnitsTCPData))
	// Output:
	// ACK/CTS: 0.0076
	// TCP data: 0.202
}

// The saturation model predicts the fair baseline a greedy receiver
// steals from: per-station throughput for n contenders, and the gain
// ceiling of a receiver that silences everyone else.
func ExampleSaturation() {
	cfg := analytic.SaturationConfig{
		Stations:      2,
		Params:        phys.Params80211B(),
		PayloadBytes:  1024,
		OverheadBytes: 28,
		UseRTSCTS:     true,
	}
	res, err := analytic.Saturation(cfg)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	gain, err := analytic.GreedyGainBound(cfg)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("fair share: %.1f Mbps per flow\n", res.PerStationBps/1e6)
	fmt.Printf("greedy ceiling: %.1fx\n", gain)
	// Output:
	// fair share: 1.9 Mbps per flow
	// greedy ceiling: 1.9x
}
