package metrics

import "math"

// UtilizationBounds reports the lowest and highest whole-channel
// utilization across snapshots — the one-line telemetry digest cmd/report
// prints per artifact (a sweep's groups span idle to saturated, and a
// regression that stops driving the channel shows up here before it shows
// up in goodput). Returns (NaN, NaN) for an empty slice.
func UtilizationBounds(snaps []*Snapshot) (lo, hi float64) {
	lo, hi = math.NaN(), math.NaN()
	for _, s := range snaps {
		if s == nil {
			continue
		}
		u := s.ChannelUtilization
		if math.IsNaN(lo) || u < lo {
			lo = u
		}
		if math.IsNaN(hi) || u > hi {
			hi = u
		}
	}
	return lo, hi
}
