package metrics

import (
	"encoding/json"
	"fmt"
	"io"
)

// EncodeSnapshots writes snapshots as one stable JSON array (an empty or
// nil slice encodes as "[]"), preserving order. This is the campaign
// store's sidecar value format: float64 fields use Go's shortest
// round-trip representation, so encode → decode → encode is the
// identity and a snapshot assembled from the store emits byte-identical
// JSONL/CSV to one that never left memory.
func EncodeSnapshots(w io.Writer, snaps []*Snapshot) error {
	if snaps == nil {
		snaps = []*Snapshot{}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(snaps); err != nil {
		return fmt.Errorf("metrics: snapshots encode: %w", err)
	}
	return nil
}

// DecodeSnapshots reads an EncodeSnapshots document back.
func DecodeSnapshots(r io.Reader) ([]*Snapshot, error) {
	var snaps []*Snapshot
	if err := json.NewDecoder(r).Decode(&snaps); err != nil {
		return nil, fmt.Errorf("metrics: snapshots decode: %w", err)
	}
	return snaps, nil
}
