package metrics

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"greedy80211/internal/stats"
)

// Labeled pairs a snapshot with the context it came from (an artifact id,
// a misbehavior name) and its position among its siblings.
type Labeled struct {
	Label string
	Group int
	Snap  *Snapshot
}

// row is the flat JSONL record: one line per station, with the snapshot's
// whole-channel fields repeated so every line is self-contained. Field
// order is fixed by this struct, which keeps emissions byte-stable.
type row struct {
	Label string `json:"label,omitempty"`
	Group int    `json:"group"`
	Station
	Runs               int     `json:"runs"`
	DurationSecs       float64 `json:"duration_secs"`
	ChannelBusySecs    float64 `json:"channel_busy_secs"`
	ChannelUtilization float64 `json:"channel_utilization"`
}

// EncodeJSONL writes one JSON object per station per snapshot, in the
// order given.
func EncodeJSONL(w io.Writer, items ...Labeled) error {
	enc := json.NewEncoder(w)
	for _, it := range items {
		if it.Snap == nil {
			continue
		}
		for _, st := range it.Snap.Stations {
			r := row{
				Label:              it.Label,
				Group:              it.Group,
				Station:            st,
				Runs:               it.Snap.Runs,
				DurationSecs:       it.Snap.DurationSecs,
				ChannelBusySecs:    it.Snap.ChannelBusySecs,
				ChannelUtilization: it.Snap.ChannelUtilization,
			}
			if err := enc.Encode(r); err != nil {
				return fmt.Errorf("metrics: jsonl encode: %w", err)
			}
		}
	}
	return nil
}

// Table renders the snapshots as one stats.Table (the CSV emitter reuses
// the harness's table layer).
func Table(items ...Labeled) stats.Table {
	t := stats.Table{
		Title: "Per-station telemetry",
		Header: []string{"label", "group", "station", "avg_cw", "rts_sent", "data_sent",
			"ack_sent", "retries", "msdu_success", "airtime_secs", "utilization",
			"nav_blocked_secs", "backoff_wait_secs", "channel_utilization", "runs"},
	}
	for _, it := range items {
		if it.Snap == nil {
			continue
		}
		for _, st := range it.Snap.Stations {
			t.AddRow(it.Label, it.Group, st.Name, st.AvgCW, st.RTSSent, st.DataSent,
				st.ACKSent, st.Retries, st.MSDUSuccess, st.AirtimeSecs, st.Utilization,
				st.NAVBlockedSecs, st.BackoffWaitSecs, it.Snap.ChannelUtilization, it.Snap.Runs)
		}
	}
	return t
}

// EncodeCSV writes the snapshots as one CSV document.
func EncodeCSV(w io.Writer, items ...Labeled) error {
	t := Table(items...)
	doc, err := t.CSV()
	if err != nil {
		return fmt.Errorf("metrics: %w", err)
	}
	if _, err := io.WriteString(w, doc); err != nil {
		return fmt.Errorf("metrics: csv write: %w", err)
	}
	return nil
}

// WriteFile emits the snapshots to path, choosing the format by extension:
// ".csv" writes CSV, anything else writes JSON Lines.
func WriteFile(path string, items ...Labeled) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("metrics: %w", err)
	}
	if strings.EqualFold(filepath.Ext(path), ".csv") {
		err = EncodeCSV(f, items...)
	} else {
		err = EncodeJSONL(f, items...)
	}
	if cerr := f.Close(); err == nil && cerr != nil {
		err = fmt.Errorf("metrics: close %s: %w", path, cerr)
	}
	return err
}

// Collector gathers snapshots from concurrently executing scenario batches
// (it is the only concurrency-aware type in this package). Snapshots
// returns them in a canonical order — sorted by serialized content — so a
// parallel and a sequential run of the same experiment emit byte-identical
// files even though batches complete in different orders.
type Collector struct {
	mu    sync.Mutex
	snaps []*Snapshot
}

// NewCollector returns an empty collector.
func NewCollector() *Collector { return &Collector{} }

// Add records one snapshot. Safe for concurrent use.
func (c *Collector) Add(s *Snapshot) {
	if s == nil {
		return
	}
	c.mu.Lock()
	c.snaps = append(c.snaps, s)
	c.mu.Unlock()
}

// Snapshots returns every collected snapshot in canonical (content-sorted)
// order.
func (c *Collector) Snapshots() []*Snapshot {
	c.mu.Lock()
	snaps := append([]*Snapshot(nil), c.snaps...)
	c.mu.Unlock()
	// Sort an index permutation by each snapshot's serialized form; the
	// keys must not move with the elements mid-sort.
	keys := make([]string, len(snaps))
	perm := make([]int, len(snaps))
	for i, s := range snaps {
		var b strings.Builder
		_ = EncodeJSONL(&b, Labeled{Snap: s})
		keys[i] = b.String()
		perm[i] = i
	}
	sort.SliceStable(perm, func(i, j int) bool { return keys[perm[i]] < keys[perm[j]] })
	out := make([]*Snapshot, len(snaps))
	for i, p := range perm {
		out[i] = snaps[p]
	}
	return out
}
