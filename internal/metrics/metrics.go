// Package metrics is the simulator's always-on telemetry layer. Every
// world owns a Registry; the medium bumps per-station airtime counters at
// frame grant time, the MAC accumulates NAV-blocked and backoff-wait time,
// and at end of run the registry folds everything into an immutable
// Snapshot: per-station MAC counters (average contention window, RTS/data
// sends, retries), transmit airtime and utilization, and whole-channel
// occupancy.
//
// The hot path is plain counter arithmetic — no interface dispatch beyond
// one nil check per transmission, no allocation, no tap required — so the
// layer stays on for every run. Snapshots from repeated seeded runs merge
// deterministically by station ID (MedianSnapshots), which is how the
// paper's median-of-5-runs methodology extends to telemetry.
package metrics

import (
	"sort"

	"greedy80211/internal/mac"
	"greedy80211/internal/sim"
	"greedy80211/internal/stats"
)

// StationSource exposes the per-station accounting a Snapshot reads at
// end of run. *mac.DCF implements it.
type StationSource interface {
	// Counters returns the station's accumulated MAC statistics.
	Counters() *mac.Counters
	// NAVBlocked reports cumulative time the station's virtual carrier
	// sense alone held the medium busy (NAV set, physical channel idle).
	NAVBlocked() sim.Time
	// BackoffWait reports cumulative time spent counting down backoff.
	BackoffWait() sim.Time
}

// registration is one station known to the registry.
type registration struct {
	id   mac.NodeID
	name string
	src  StationSource
}

// Registry accumulates channel-side telemetry for one world. It is driven
// by the world's single-goroutine scheduler and is not safe for concurrent
// use; each world owns its registry, so the parallel runner never shares
// one.
type Registry struct {
	airtime []sim.Time // transmit airtime indexed by NodeID
	txCount []int64    // transmissions indexed by NodeID
	busy    sim.Time   // total transmit airtime on the channel
	regs    []registration
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry { return &Registry{} }

// Register adds a station so its MAC counters appear in snapshots.
// Stations register once, at world-construction time.
func (r *Registry) Register(id mac.NodeID, name string, src StationSource) {
	r.regs = append(r.regs, registration{id: id, name: name, src: src})
}

// RecordTx attributes one transmission's airtime to its sender. This is
// the hot path: two slice bumps and an add.
func (r *Registry) RecordTx(src mac.NodeID, airtime sim.Time) {
	if int(src) >= len(r.airtime) {
		grown := make([]sim.Time, src+1)
		copy(grown, r.airtime)
		r.airtime = grown
		counts := make([]int64, src+1)
		copy(counts, r.txCount)
		r.txCount = counts
	}
	r.airtime[src] += airtime
	r.txCount[src]++
	r.busy += airtime
}

// Station is one station's end-of-run telemetry. Fields are float64 so
// cross-run medians stay representable.
type Station struct {
	ID   int    `json:"id"`
	Name string `json:"station"`

	// Contention behavior (Fig 2, Table IV of the paper).
	AvgCW float64 `json:"avg_cw"`

	// Transmit-side counts (Fig 3's RTS ratio uses RTSSent).
	RTSSent     float64 `json:"rts_sent"`
	DataSent    float64 `json:"data_sent"`
	ACKSent     float64 `json:"ack_sent"`
	Retries     float64 `json:"retries"` // data retries + RTS retries
	MSDUSuccess float64 `json:"msdu_success"`

	// Airtime share: transmit seconds and the fraction of the run they
	// occupy (NAV-inflation attacks show up here directly).
	AirtimeSecs float64 `json:"airtime_secs"`
	Utilization float64 `json:"utilization"`

	// Medium-wait decomposition: time blocked by virtual carrier sense
	// only, and time spent in backoff countdown.
	NAVBlockedSecs  float64 `json:"nav_blocked_secs"`
	BackoffWaitSecs float64 `json:"backoff_wait_secs"`
}

// Snapshot is an immutable end-of-run telemetry aggregate: one world, or
// the per-field median of several worlds (see MedianSnapshots).
type Snapshot struct {
	// Runs is how many worlds were merged into this snapshot (1 for a
	// single run).
	Runs int `json:"runs"`
	// DurationSecs is the simulated time the snapshot covers.
	DurationSecs float64 `json:"duration_secs"`
	// ChannelBusySecs sums every transmission's airtime. Overlapping
	// transmissions double-count, so in a single collision domain this
	// approximates (and slightly overstates, by collisions) occupancy.
	ChannelBusySecs float64 `json:"channel_busy_secs"`
	// ChannelUtilization is ChannelBusySecs / DurationSecs.
	ChannelUtilization float64 `json:"channel_utilization"`
	// Stations is sorted by station ID.
	Stations []Station `json:"stations"`
}

// Snapshot folds the registry's counters and every registered station's
// MAC accounting into an immutable aggregate covering elapsed simulated
// time.
func (r *Registry) Snapshot(elapsed sim.Time) *Snapshot {
	durSecs := elapsed.Seconds()
	s := &Snapshot{
		Runs:            1,
		DurationSecs:    durSecs,
		ChannelBusySecs: r.busy.Seconds(),
	}
	if durSecs > 0 {
		s.ChannelUtilization = s.ChannelBusySecs / durSecs
	}
	s.Stations = make([]Station, 0, len(r.regs))
	for _, reg := range r.regs {
		c := reg.src.Counters()
		st := Station{
			ID:              int(reg.id),
			Name:            reg.name,
			AvgCW:           c.AvgCW(),
			RTSSent:         float64(c.RTSSent),
			DataSent:        float64(c.DataSent),
			ACKSent:         float64(c.ACKSent),
			Retries:         float64(c.DataRetries + c.RTSRetries),
			MSDUSuccess:     float64(c.MSDUSuccess),
			NAVBlockedSecs:  reg.src.NAVBlocked().Seconds(),
			BackoffWaitSecs: reg.src.BackoffWait().Seconds(),
		}
		if int(reg.id) < len(r.airtime) {
			st.AirtimeSecs = r.airtime[reg.id].Seconds()
		}
		if durSecs > 0 {
			st.Utilization = st.AirtimeSecs / durSecs
		}
		s.Stations = append(s.Stations, st)
	}
	sort.Slice(s.Stations, func(i, j int) bool { return s.Stations[i].ID < s.Stations[j].ID })
	return s
}

// MedianSnapshots merges snapshots from repeated runs of the same scenario
// into one: every numeric field becomes the per-station median across
// runs, with stations matched by ID (names come from the first snapshot
// that mentions each ID). The result is deterministic in the station-ID
// order regardless of the order runs completed in. Returns nil for an
// empty input.
func MedianSnapshots(snaps []*Snapshot) *Snapshot {
	if len(snaps) == 0 {
		return nil
	}
	out := &Snapshot{Runs: 0}
	var durs, busys, utils []float64
	perID := make(map[int][]*Station)
	names := make(map[int]string)
	var ids []int
	for _, s := range snaps {
		if s == nil {
			continue
		}
		out.Runs += s.Runs
		durs = append(durs, s.DurationSecs)
		busys = append(busys, s.ChannelBusySecs)
		utils = append(utils, s.ChannelUtilization)
		for i := range s.Stations {
			st := &s.Stations[i]
			if _, seen := names[st.ID]; !seen {
				names[st.ID] = st.Name
				ids = append(ids, st.ID)
			}
			perID[st.ID] = append(perID[st.ID], st)
		}
	}
	if out.Runs == 0 {
		return nil
	}
	out.DurationSecs = stats.Median(durs)
	out.ChannelBusySecs = stats.Median(busys)
	out.ChannelUtilization = stats.Median(utils)
	sort.Ints(ids)
	med := func(sts []*Station, f func(*Station) float64) float64 {
		vals := make([]float64, len(sts))
		for i, st := range sts {
			vals[i] = f(st)
		}
		return stats.Median(vals)
	}
	for _, id := range ids {
		sts := perID[id]
		out.Stations = append(out.Stations, Station{
			ID:              id,
			Name:            names[id],
			AvgCW:           med(sts, func(s *Station) float64 { return s.AvgCW }),
			RTSSent:         med(sts, func(s *Station) float64 { return s.RTSSent }),
			DataSent:        med(sts, func(s *Station) float64 { return s.DataSent }),
			ACKSent:         med(sts, func(s *Station) float64 { return s.ACKSent }),
			Retries:         med(sts, func(s *Station) float64 { return s.Retries }),
			MSDUSuccess:     med(sts, func(s *Station) float64 { return s.MSDUSuccess }),
			AirtimeSecs:     med(sts, func(s *Station) float64 { return s.AirtimeSecs }),
			Utilization:     med(sts, func(s *Station) float64 { return s.Utilization }),
			NAVBlockedSecs:  med(sts, func(s *Station) float64 { return s.NAVBlockedSecs }),
			BackoffWaitSecs: med(sts, func(s *Station) float64 { return s.BackoffWaitSecs }),
		})
	}
	return out
}
