package metrics

import (
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"greedy80211/internal/mac"
	"greedy80211/internal/sim"
)

// fakeSource is a StationSource with fixed readings.
type fakeSource struct {
	c   mac.Counters
	nav sim.Time
	bo  sim.Time
}

func (f *fakeSource) Counters() *mac.Counters { return &f.c }
func (f *fakeSource) NAVBlocked() sim.Time    { return f.nav }
func (f *fakeSource) BackoffWait() sim.Time   { return f.bo }

func approx(a, b float64) bool { return math.Abs(a-b) < 1e-12 }

func TestRegistrySnapshot(t *testing.T) {
	r := NewRegistry()
	a := &fakeSource{nav: 3 * sim.Millisecond, bo: 7 * sim.Millisecond}
	a.c.DataSent = 10
	a.c.RTSSent = 12
	a.c.DataRetries = 1
	a.c.RTSRetries = 2
	a.c.MSDUSuccess = 9
	a.c.CWSum = 62
	a.c.CWSamples = 2
	b := &fakeSource{}
	// Register out of ID order; the snapshot must sort by ID.
	r.Register(5, "S1", a)
	r.Register(2, "R1", b)
	r.RecordTx(5, 100*sim.Millisecond)
	r.RecordTx(5, 100*sim.Millisecond)
	r.RecordTx(2, 50*sim.Millisecond)

	s := r.Snapshot(1 * sim.Second)
	if s.Runs != 1 {
		t.Errorf("Runs = %d, want 1", s.Runs)
	}
	if !approx(s.DurationSecs, 1.0) || !approx(s.ChannelBusySecs, 0.25) ||
		!approx(s.ChannelUtilization, 0.25) {
		t.Errorf("channel fields = %+v", s)
	}
	if len(s.Stations) != 2 || s.Stations[0].ID != 2 || s.Stations[1].ID != 5 {
		t.Fatalf("stations not sorted by ID: %+v", s.Stations)
	}
	st := s.Stations[1]
	if st.Name != "S1" || !approx(st.AirtimeSecs, 0.2) || !approx(st.Utilization, 0.2) {
		t.Errorf("airtime fields: %+v", st)
	}
	if !approx(st.AvgCW, 31) || st.DataSent != 10 || st.RTSSent != 12 ||
		st.Retries != 3 || st.MSDUSuccess != 9 {
		t.Errorf("counter fields: %+v", st)
	}
	if !approx(st.NAVBlockedSecs, 0.003) || !approx(st.BackoffWaitSecs, 0.007) {
		t.Errorf("wait fields: %+v", st)
	}
	// Station with no transmissions recorded gets zero airtime, not a panic.
	if got := s.Stations[0].AirtimeSecs; !approx(got, 0.05) {
		t.Errorf("R1 airtime = %v, want 0.05", got)
	}
}

func snapWith(dur float64, vals map[int]float64) *Snapshot {
	s := &Snapshot{Runs: 1, DurationSecs: dur}
	for id, v := range vals {
		s.Stations = append(s.Stations, Station{ID: id, Name: "st", AirtimeSecs: v, AvgCW: v * 10})
	}
	return s
}

func TestMedianSnapshots(t *testing.T) {
	if MedianSnapshots(nil) != nil {
		t.Error("empty input should merge to nil")
	}
	if MedianSnapshots([]*Snapshot{nil, nil}) != nil {
		t.Error("all-nil input should merge to nil")
	}
	snaps := []*Snapshot{
		snapWith(1, map[int]float64{1: 3, 2: 30}),
		snapWith(2, map[int]float64{1: 1, 2: 10}),
		snapWith(3, map[int]float64{1: 2, 2: 20}),
	}
	m := MedianSnapshots(snaps)
	if m.Runs != 3 {
		t.Errorf("Runs = %d, want 3", m.Runs)
	}
	if !approx(m.DurationSecs, 2) {
		t.Errorf("DurationSecs = %v, want 2", m.DurationSecs)
	}
	if len(m.Stations) != 2 || m.Stations[0].ID != 1 || m.Stations[1].ID != 2 {
		t.Fatalf("merged stations: %+v", m.Stations)
	}
	if !approx(m.Stations[0].AirtimeSecs, 2) || !approx(m.Stations[1].AirtimeSecs, 20) {
		t.Errorf("per-station medians: %+v", m.Stations)
	}
	if !approx(m.Stations[0].AvgCW, 20) {
		t.Errorf("AvgCW median = %v, want 20", m.Stations[0].AvgCW)
	}
	// Merge order must not matter (parallel runs complete in any order).
	rev := []*Snapshot{snaps[2], snaps[0], snaps[1]}
	var f, g strings.Builder
	if err := EncodeJSONL(&f, Labeled{Snap: m}); err != nil {
		t.Fatal(err)
	}
	if err := EncodeJSONL(&g, Labeled{Snap: MedianSnapshots(rev)}); err != nil {
		t.Fatal(err)
	}
	if f.String() != g.String() {
		t.Errorf("merge depends on input order:\n%s\nvs\n%s", f.String(), g.String())
	}
}

func TestCollectorCanonicalOrder(t *testing.T) {
	a := snapWith(1, map[int]float64{1: 1})
	b := snapWith(2, map[int]float64{1: 2})
	c := snapWith(3, map[int]float64{1: 3})
	serialize := func(snaps []*Snapshot) string {
		var sb strings.Builder
		for _, s := range snaps {
			if err := EncodeJSONL(&sb, Labeled{Snap: s}); err != nil {
				t.Fatal(err)
			}
		}
		return sb.String()
	}
	var c1, c2 Collector
	c1.Add(a)
	c1.Add(b)
	c1.Add(c)
	c2.Add(c)
	c2.Add(a)
	c2.Add(nil) // ignored
	c2.Add(b)
	if serialize(c1.Snapshots()) != serialize(c2.Snapshots()) {
		t.Error("collector order depends on insertion order")
	}
	if n := len(c2.Snapshots()); n != 3 {
		t.Errorf("nil snapshot not ignored: %d snapshots", n)
	}
}

func TestEmitters(t *testing.T) {
	s := snapWith(1, map[int]float64{7: 0.5})
	s.ChannelBusySecs = 0.5
	s.ChannelUtilization = 0.5

	var jl strings.Builder
	if err := EncodeJSONL(&jl, Labeled{Label: "fig2", Group: 3, Snap: s}, Labeled{Snap: nil}); err != nil {
		t.Fatal(err)
	}
	line := jl.String()
	for _, want := range []string{`"label":"fig2"`, `"group":3`, `"id":7`, `"airtime_secs":0.5`,
		`"channel_utilization":0.5`} {
		if !strings.Contains(line, want) {
			t.Errorf("JSONL missing %s in %s", want, line)
		}
	}
	if strings.Count(line, "\n") != 1 {
		t.Errorf("want exactly one line, got %q", line)
	}

	var csv strings.Builder
	if err := EncodeCSV(&csv, Labeled{Label: "fig2", Snap: s}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(csv.String(), "label,group,station,avg_cw") {
		t.Errorf("CSV header missing: %q", csv.String())
	}

	dir := t.TempDir()
	jsonlPath := filepath.Join(dir, "m.jsonl")
	csvPath := filepath.Join(dir, "m.csv")
	if err := WriteFile(jsonlPath, Labeled{Snap: s}); err != nil {
		t.Fatal(err)
	}
	if err := WriteFile(csvPath, Labeled{Snap: s}); err != nil {
		t.Fatal(err)
	}
	jb, _ := os.ReadFile(jsonlPath)
	cb, _ := os.ReadFile(csvPath)
	if !strings.HasPrefix(string(jb), "{") {
		t.Errorf("jsonl file should hold JSON lines: %q", jb)
	}
	if !strings.HasPrefix(string(cb), "#") && !strings.Contains(string(cb), "label,group") {
		t.Errorf("csv file should hold CSV: %q", cb)
	}
}
