package metrics

import (
	"bytes"
	"strings"
	"testing"
)

// Snapshots round-trip through the store encoding exactly: decode →
// re-encode is byte-identical, and the JSONL emitted from decoded
// snapshots matches the original emission — the property campaign
// assembly relies on.
func TestSnapshotsRoundTripIsIdentity(t *testing.T) {
	snaps := []*Snapshot{
		{
			Runs: 3, DurationSecs: 5.000000001, ChannelBusySecs: 1.0 / 3.0,
			ChannelUtilization: 0.06666666666666667,
			Stations: []Station{
				{ID: 0, Name: "NS", AvgCW: 31.5, RTSSent: 100, AirtimeSecs: 0.1234567890123},
				{ID: 1, Name: "GR", NAVBlockedSecs: 2.0000000000000004e-05},
			},
		},
		{Runs: 1, DurationSecs: 2},
	}
	var first bytes.Buffer
	if err := EncodeSnapshots(&first, snaps); err != nil {
		t.Fatal(err)
	}
	decoded, err := DecodeSnapshots(bytes.NewReader(first.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	var again bytes.Buffer
	if err := EncodeSnapshots(&again, decoded); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first.Bytes(), again.Bytes()) {
		t.Error("decode → re-encode changed bytes")
	}

	var origLines, decodedLines strings.Builder
	for i, s := range snaps {
		if err := EncodeJSONL(&origLines, Labeled{Label: "x", Group: i, Snap: s}); err != nil {
			t.Fatal(err)
		}
	}
	for i, s := range decoded {
		if err := EncodeJSONL(&decodedLines, Labeled{Label: "x", Group: i, Snap: s}); err != nil {
			t.Fatal(err)
		}
	}
	if origLines.String() != decodedLines.String() {
		t.Error("JSONL emission differs after a store round trip")
	}
}

// nil and empty both encode as an empty array, never "null".
func TestSnapshotsEmptyEncoding(t *testing.T) {
	var buf bytes.Buffer
	if err := EncodeSnapshots(&buf, nil); err != nil {
		t.Fatal(err)
	}
	if got := strings.TrimSpace(buf.String()); got != "[]" {
		t.Errorf("nil snapshots encode as %q, want []", got)
	}
	decoded, err := DecodeSnapshots(bytes.NewReader(buf.Bytes()))
	if err != nil || len(decoded) != 0 {
		t.Errorf("decode empty: %v, %v", decoded, err)
	}
}
