// Package wireline models fixed-latency, fixed-rate full-duplex links with
// drop-tail queues. The paper's "TCP sender at remote site" experiments
// (Fig 15, 16) connect a remote host to the access point through such a
// link with 2–400 ms one-way latency.
package wireline

import (
	"fmt"

	"greedy80211/internal/pool"
	"greedy80211/internal/sim"
	"greedy80211/internal/transport"
)

// transfer is one packet crossing the link: a recycled token whose two
// events (queue departure, far-side arrival) are scheduled via AtCall
// with the package-level dispatchers below, so forwarding creates no
// per-packet closures.
type transfer struct {
	e *Endpoint
	p *transport.Packet
}

func transferDepart(x any) { x.(*transfer).e.queued-- }

func transferArrive(x any) {
	t := x.(*transfer)
	e, p := t.e, t.p
	// Recycle before delivery: the handler may forward again and reuse
	// this token. The departure event always precedes arrival (it is
	// scheduled first at a time ≤ the arrival's), so no event still
	// references the token.
	t.e = nil
	t.p = nil
	e.transfers.Put(t)
	e.peer.handler(p)
}

// Config parameterizes a link.
type Config struct {
	// Delay is the one-way propagation latency.
	Delay sim.Time
	// RateBps is the serialization rate; zero means effectively infinite
	// (no serialization delay).
	RateBps int64
	// QueueCap bounds packets awaiting serialization at each endpoint;
	// zero means the drop-tail default of 50.
	QueueCap int
}

// Link is a bidirectional wired link between two endpoints.
type Link struct {
	a, b *Endpoint
}

// NewLink builds a link; attach delivery handlers to both endpoints before
// forwarding traffic.
func NewLink(sched *sim.Scheduler, cfg Config) *Link {
	if sched == nil {
		panic("wireline: nil scheduler")
	}
	if cfg.Delay < 0 {
		panic(fmt.Sprintf("wireline: negative delay %v", cfg.Delay))
	}
	if cfg.QueueCap == 0 {
		cfg.QueueCap = 50
	}
	l := &Link{}
	transfers := pool.NewArena[transfer](64, nil)
	l.a = &Endpoint{sched: sched, cfg: cfg, transfers: transfers}
	l.b = &Endpoint{sched: sched, cfg: cfg, transfers: transfers}
	l.a.peer = l.b
	l.b.peer = l.a
	return l
}

// A reports the link's first endpoint.
func (l *Link) A() *Endpoint { return l.a }

// B reports the link's second endpoint.
func (l *Link) B() *Endpoint { return l.b }

// Endpoint is one side of a link. Forwarding through an endpoint delivers
// to the handler attached at the opposite endpoint. Endpoint implements
// the node package's Route interface shape (Forward method), so it can be
// installed directly as a flow's next hop.
type Endpoint struct {
	sched     *sim.Scheduler
	cfg       Config
	peer      *Endpoint
	handler   func(*transport.Packet)
	transfers *pool.Arena[transfer] // shared by both endpoints of the link

	queued        int
	lastDeparture sim.Time

	// Forwarded and Drops count packets accepted and rejected.
	Forwarded int64
	Drops     int64
}

// Attach sets the function receiving packets that arrive at this endpoint.
func (e *Endpoint) Attach(h func(*transport.Packet)) {
	if h == nil {
		panic("wireline: nil handler")
	}
	e.handler = h
}

// Forward sends p across the link toward the peer endpoint. It reports
// false when the transmit queue is full.
func (e *Endpoint) Forward(p *transport.Packet) bool {
	if e.peer.handler == nil {
		panic("wireline: forwarding into an endpoint with no attached handler on the far side")
	}
	if e.queued >= e.cfg.QueueCap {
		e.Drops++
		return false
	}
	now := e.sched.Now()
	var txTime sim.Time
	if e.cfg.RateBps > 0 {
		txTime = sim.Time(int64(p.WireBytes) * 8 * int64(sim.Second) / e.cfg.RateBps)
	}
	start := now
	if e.lastDeparture > start {
		start = e.lastDeparture
	}
	depart := start + txTime
	e.lastDeparture = depart
	e.queued++
	t := e.transfers.Get()
	t.e = e
	t.p = p
	e.sched.AtCall(depart, transferDepart, t)
	e.sched.AtCall(depart+e.cfg.Delay, transferArrive, t)
	e.Forwarded++
	return true
}

// QueueLen reports packets awaiting serialization at this endpoint.
func (e *Endpoint) QueueLen() int { return e.queued }
