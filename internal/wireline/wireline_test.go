package wireline

import (
	"testing"
	"testing/quick"

	"greedy80211/internal/sim"
	"greedy80211/internal/transport"
)

func TestLinkDeliversWithDelay(t *testing.T) {
	sched := sim.NewScheduler(1)
	l := NewLink(sched, Config{Delay: 10 * sim.Millisecond})
	var atB []*transport.Packet
	var when []sim.Time
	l.B().Attach(func(p *transport.Packet) {
		atB = append(atB, p)
		when = append(when, sched.Now())
	})
	l.A().Attach(func(*transport.Packet) {})

	p := &transport.Packet{Flow: 1, Seq: 0, WireBytes: 1064}
	if !l.A().Forward(p) {
		t.Fatal("Forward rejected")
	}
	sched.Run()
	if len(atB) != 1 || atB[0] != p {
		t.Fatalf("delivered %v", atB)
	}
	if when[0] != 10*sim.Millisecond {
		t.Errorf("arrival at %v, want 10ms", when[0])
	}
}

func TestLinkSerialization(t *testing.T) {
	// 1 Mbps, two 1000-byte packets: second departs 8ms after the first.
	sched := sim.NewScheduler(1)
	l := NewLink(sched, Config{Delay: sim.Millisecond, RateBps: 1_000_000})
	var when []sim.Time
	l.B().Attach(func(*transport.Packet) { when = append(when, sched.Now()) })
	l.A().Attach(func(*transport.Packet) {})

	for i := 0; i < 2; i++ {
		l.A().Forward(&transport.Packet{Seq: i, WireBytes: 1000})
	}
	sched.Run()
	if len(when) != 2 {
		t.Fatalf("delivered %d", len(when))
	}
	if got := when[1] - when[0]; got != 8*sim.Millisecond {
		t.Errorf("inter-arrival %v, want 8ms", got)
	}
}

func TestLinkQueueCapacity(t *testing.T) {
	sched := sim.NewScheduler(1)
	l := NewLink(sched, Config{Delay: sim.Millisecond, RateBps: 1000, QueueCap: 5})
	l.B().Attach(func(*transport.Packet) {})
	l.A().Attach(func(*transport.Packet) {})

	accepted := 0
	for i := 0; i < 20; i++ {
		if l.A().Forward(&transport.Packet{Seq: i, WireBytes: 1000}) {
			accepted++
		}
	}
	if accepted != 5 {
		t.Errorf("accepted %d, want 5", accepted)
	}
	if l.A().Drops != 15 {
		t.Errorf("Drops = %d, want 15", l.A().Drops)
	}
	if l.A().QueueLen() != 5 {
		t.Errorf("QueueLen = %d, want 5", l.A().QueueLen())
	}
	sched.Run()
	if l.A().QueueLen() != 0 {
		t.Errorf("queue did not drain: %d", l.A().QueueLen())
	}
}

func TestLinkBidirectional(t *testing.T) {
	sched := sim.NewScheduler(1)
	l := NewLink(sched, Config{Delay: 2 * sim.Millisecond})
	gotA, gotB := 0, 0
	l.A().Attach(func(*transport.Packet) { gotA++ })
	l.B().Attach(func(*transport.Packet) { gotB++ })
	l.A().Forward(&transport.Packet{WireBytes: 100})
	l.B().Forward(&transport.Packet{WireBytes: 100})
	sched.Run()
	if gotA != 1 || gotB != 1 {
		t.Errorf("gotA=%d gotB=%d, want 1 and 1", gotA, gotB)
	}
}

func TestForwardWithoutHandlerPanics(t *testing.T) {
	sched := sim.NewScheduler(1)
	l := NewLink(sched, Config{Delay: sim.Millisecond})
	defer func() {
		if recover() == nil {
			t.Error("no panic without attached handler")
		}
	}()
	l.A().Forward(&transport.Packet{WireBytes: 1})
}

// Property: FIFO — packets arrive in forwarding order regardless of sizes.
func TestPropertyLinkFIFO(t *testing.T) {
	f := func(sizes []uint16) bool {
		sched := sim.NewScheduler(3)
		l := NewLink(sched, Config{Delay: sim.Millisecond, RateBps: 1_000_000, QueueCap: 1 << 30})
		var order []int
		l.B().Attach(func(p *transport.Packet) { order = append(order, p.Seq) })
		l.A().Attach(func(*transport.Packet) {})
		for i, s := range sizes {
			l.A().Forward(&transport.Packet{Seq: i, WireBytes: int(s%1400) + 1})
		}
		sched.Run()
		if len(order) != len(sizes) {
			return false
		}
		for i, seq := range order {
			if seq != i {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
