// Package versionflag is the shared -version plumbing of the CLIs
// (greedysim, experiments, bench, campaign, report): one place registers
// the flag and prints the module fingerprint, instead of each command
// copy-pasting it. The fingerprint is the same string the campaign
// store folds into its cache keys, so `<cmd> -version` tells you exactly
// which store entries a binary can reuse.
package versionflag

import (
	"flag"
	"fmt"
	"io"

	"greedy80211/internal/core"
)

// Register adds -version to fs and returns its value pointer; callers
// check it right after parsing via Handle.
func Register(fs *flag.FlagSet) *bool {
	return fs.Bool("version", false, "print the module fingerprint and exit")
}

// Handle prints the fingerprint to w when requested and reports whether
// the caller should exit (with status 0).
func Handle(requested *bool, w io.Writer, cmd string) bool {
	if requested == nil || !*requested {
		return false
	}
	fmt.Fprintf(w, "%s %s\n", cmd, core.ModuleFingerprint())
	return true
}
