package versionflag

import (
	"flag"
	"strings"
	"testing"

	"greedy80211/internal/core"
)

func TestRegisterAndHandle(t *testing.T) {
	fs := flag.NewFlagSet("x", flag.ContinueOnError)
	v := Register(fs)
	if err := fs.Parse([]string{"-version"}); err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	if !Handle(v, &out, "x") {
		t.Fatal("Handle returned false with -version set")
	}
	want := "x " + core.ModuleFingerprint() + "\n"
	if out.String() != want {
		t.Errorf("output %q, want %q", out.String(), want)
	}
}

func TestHandleNotRequested(t *testing.T) {
	fs := flag.NewFlagSet("x", flag.ContinueOnError)
	v := Register(fs)
	if err := fs.Parse(nil); err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	if Handle(v, &out, "x") {
		t.Fatal("Handle returned true without -version")
	}
	if out.Len() != 0 {
		t.Errorf("unexpected output %q", out.String())
	}
}
