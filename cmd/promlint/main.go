// Command promlint validates Prometheus text exposition on stdin with
// the repo's own parser (internal/obs) — the same one the obs tests
// gate the renderer against — so CI can lint a live /metrics scrape
// without pulling in a client library.
//
//	curl -s http://127.0.0.1:8080/metrics | go run ./cmd/promlint \
//	    -require campaignd_request_seconds,campaignd_leases_total
//
// Exit status: 0 when the exposition parses, is non-empty, and every
// -require'd family is present with at least one sample; 1 otherwise.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"greedy80211/internal/obs"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	fs := flag.NewFlagSet("promlint", flag.ContinueOnError)
	require := fs.String("require", "", "comma-separated families that must be present with >= 1 sample")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	doc, err := obs.ParsePrometheusText(os.Stdin)
	if err != nil {
		fmt.Fprintf(os.Stderr, "promlint: %v\n", err)
		return 1
	}
	if doc.Samples == 0 {
		fmt.Fprintln(os.Stderr, "promlint: exposition carries no samples")
		return 1
	}
	bad := false
	for _, name := range strings.Split(*require, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		if f := doc.Families[name]; f == nil || f.Samples == 0 {
			fmt.Fprintf(os.Stderr, "promlint: required family %q missing or empty\n", name)
			bad = true
		}
	}
	if bad {
		return 1
	}
	fmt.Printf("promlint: %d families, %d samples ok\n", len(doc.Families), doc.Samples)
	return 0
}
