package main

import (
	"os"
	"path/filepath"
	"testing"
)

func TestUsageAndBadArgs(t *testing.T) {
	tests := []struct {
		name string
		args []string
		want int
	}{
		{"no args", nil, 2},
		{"unknown subcommand", []string{"bogus"}, 2},
		{"help", []string{"help"}, 0},
		{"run without artifact", []string{"run"}, 2},
		{"run bad flag", []string{"run", "-nope"}, 2},
		{"render without file", []string{"render"}, 2},
		{"render missing file", []string{"render", "/nonexistent/x.jsonl"}, 1},
		// The file is read before the format is validated, so an empty
		// file fails first with exit 1.
		{"render empty file", []string{"render", "/dev/null"}, 1},
		{"export without file", []string{"export"}, 2},
		{"check missing file", []string{"check", "/nonexistent/x.jsonl"}, 1},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := run(tt.args); got != tt.want {
				t.Errorf("run(%v) = %d, want %d", tt.args, got, tt.want)
			}
		})
	}
}

// TestRunRenderExportCheckRoundTrip records a quick artifact and pushes
// the resulting file through every other subcommand.
func TestRunRenderExportCheckRoundTrip(t *testing.T) {
	dir := t.TempDir()
	if got := run([]string{"run", "-artifact", "fig1", "-quick", "-o", dir}); got != 0 {
		t.Fatalf("trace run = %d, want 0", got)
	}
	matches, err := filepath.Glob(filepath.Join(dir, "fig1_run*_seed*.trace.jsonl"))
	if err != nil || len(matches) == 0 {
		t.Fatalf("no trace files recorded: %v %v", matches, err)
	}
	timelines, _ := filepath.Glob(filepath.Join(dir, "*.timeline.txt"))
	if len(timelines) != len(matches) {
		t.Errorf("timelines = %d, traces = %d; want one per run", len(timelines), len(matches))
	}

	file := matches[0]
	if got := run([]string{"render", file}); got != 0 {
		t.Errorf("render timeline = %d", got)
	}
	if got := run([]string{"render", "-format", "text", file}); got != 0 {
		t.Errorf("render text = %d", got)
	}
	out := filepath.Join(dir, "chrome.json")
	if got := run([]string{"export", "-format", "chrome", "-o", out, file}); got != 0 {
		t.Errorf("export chrome = %d", got)
	}
	if st, err := os.Stat(out); err != nil || st.Size() == 0 {
		t.Errorf("chrome export: err=%v size=%d", err, st.Size())
	}
	if got := run([]string{"check", file}); got != 0 {
		t.Errorf("check on a recorded file = %d, want 0 (clean)", got)
	}
}
