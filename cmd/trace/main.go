// Command trace drives the simulator's flight recorder: it records runs,
// renders recorded traces, converts them to other formats, and checks the
// 802.11 access invariants over them.
//
// Usage:
//
//	trace run -artifact fig1 -o traces/            # record an artifact's worlds
//	trace run -artifact fig1 -quick -o traces/
//	trace render traces/fig1_run0_seed1.trace.jsonl          # ASCII timeline
//	trace render -format text traces/fig1_run0_seed1.trace.jsonl
//	trace export -format chrome -o fig1.json traces/fig1_run0_seed1.trace.jsonl
//	trace check traces/*.trace.jsonl               # re-check recorded files
//	trace check                                    # run every gated artifact at the
//	                                               # report profile and check live
//
// Subcommands:
//
//	run     record one artifact's worlds (JSONL + timeline per run, with
//	        the invariant checker attached)
//	render  print a recorded trace as an ASCII timeline or event log
//	export  convert a recorded trace to Chrome trace-event JSON
//	        (load in ui.perfetto.dev or chrome://tracing) or a timeline
//	check   verify the DCF invariants — over recorded files, or live over
//	        the report gate's artifacts at its pinned profile
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"time"

	"greedy80211/internal/experiments"
	"greedy80211/internal/report"
	"greedy80211/internal/runner"
	"greedy80211/internal/sim"
	"greedy80211/internal/trace"
	"greedy80211/internal/versionflag"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func usage(w io.Writer) {
	fmt.Fprintln(w, "usage: trace <run|render|export|check> [flags]")
	fmt.Fprintln(w, "  run     -artifact <id> [-o dir] [-seeds N] [-duration D] [-quick] [-cap N]")
	fmt.Fprintln(w, "  render  [-format timeline|text] [-width N] <file.trace.jsonl>")
	fmt.Fprintln(w, "  export  [-format chrome|timeline] [-o file] <file.trace.jsonl>")
	fmt.Fprintln(w, "  check   [file.trace.jsonl ...]   (no files: run the gated artifacts live)")
}

func run(args []string) int {
	if len(args) == 0 {
		usage(os.Stderr)
		return 2
	}
	switch args[0] {
	case "run":
		return cmdRun(args[1:])
	case "render":
		return cmdRender(args[1:])
	case "export":
		return cmdExport(args[1:])
	case "check":
		return cmdCheck(args[1:])
	case "-h", "-help", "--help", "help":
		usage(os.Stdout)
		return 0
	case "-version", "--version":
		v := true
		versionflag.Handle(&v, os.Stdout, "trace")
		return 0
	default:
		fmt.Fprintf(os.Stderr, "trace: unknown subcommand %q\n", args[0])
		usage(os.Stderr)
		return 2
	}
}

func fail(err error) int {
	fmt.Fprintf(os.Stderr, "trace: %v\n", err)
	return 1
}

// cmdRun records one artifact's worlds with the checker attached.
func cmdRun(args []string) int {
	fs := flag.NewFlagSet("trace run", flag.ContinueOnError)
	var (
		artifact = fs.String("artifact", "", "artifact id to run (fig1..fig24, tab1..tab9, extc)")
		out      = fs.String("o", "traces", "output directory for JSONL traces and timelines")
		seeds    = fs.Int("seeds", 0, "seeded repetitions (default 5)")
		baseSeed = fs.Int64("seed", 0, "base seed")
		duration = fs.Duration("duration", 0, "simulated time per run (default 5s)")
		quick    = fs.Bool("quick", false, "1 seed, 2s runs, trimmed sweeps")
		capacity = fs.Int("cap", 0, "flight-recorder ring capacity in events per run (default 4096)")
		parallel = fs.Int("parallel", runtime.GOMAXPROCS(0),
			"worker-pool size; 1 = sequential (trace output is identical either way)")
		version = versionflag.Register(fs)
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if versionflag.Handle(version, os.Stdout, "trace") {
		return 0
	}
	if *artifact == "" {
		fmt.Fprintln(os.Stderr, "trace run: -artifact required")
		return 2
	}
	runner.SetLimit(*parallel)
	coll := trace.NewCollector(*capacity)
	coll.EnableChecks()
	cfg := experiments.RunConfig{
		Seeds:    *seeds,
		BaseSeed: *baseSeed,
		Duration: sim.Time(duration.Nanoseconds()),
		Quick:    *quick,
		Trace:    coll,
	}
	start := time.Now()
	if _, err := experiments.Run(*artifact, cfg); err != nil {
		return fail(err)
	}
	paths, err := trace.ExportDir(*out, *artifact, coll.Recordings())
	if err != nil {
		return fail(err)
	}
	fmt.Printf("%s: %d worlds recorded in %.1fs, %d files written to %s\n",
		*artifact, len(coll.Recordings()), time.Since(start).Seconds(), len(paths), *out)
	if n := coll.ViolationCount(); n > 0 {
		fmt.Fprintf(os.Stderr, "trace: %d invariant violations:\n", n)
		for _, v := range coll.Violations() {
			fmt.Fprintln(os.Stderr, v)
		}
		return 1
	}
	fmt.Println("invariants: clean")
	return 0
}

func readTrace(path string) (trace.Meta, []trace.Event, error) {
	f, err := os.Open(path)
	if err != nil {
		return trace.Meta{}, nil, err
	}
	defer f.Close()
	return trace.ReadJSONL(f)
}

// cmdRender prints a recorded trace for terminal reading.
func cmdRender(args []string) int {
	fs := flag.NewFlagSet("trace render", flag.ContinueOnError)
	var (
		format = fs.String("format", "timeline", "timeline | text")
		width  = fs.Int("width", 120, "timeline width in columns")
		from   = fs.Duration("from", 0, "window start (e.g. 100ms); zero with -to zero autosizes")
		to     = fs.Duration("to", 0, "window end")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "trace render: exactly one trace file required")
		return 2
	}
	meta, events, err := readTrace(fs.Arg(0))
	if err != nil {
		return fail(err)
	}
	switch *format {
	case "timeline":
		fmt.Print(trace.RenderTimeline(meta, events,
			sim.Time(from.Nanoseconds()), sim.Time(to.Nanoseconds()), *width))
	case "text":
		for _, e := range events {
			fmt.Println(e.String())
		}
	default:
		fmt.Fprintf(os.Stderr, "trace render: unknown format %q\n", *format)
		return 2
	}
	return 0
}

// cmdExport converts a recorded trace to another format.
func cmdExport(args []string) int {
	fs := flag.NewFlagSet("trace export", flag.ContinueOnError)
	var (
		format = fs.String("format", "chrome", "chrome | timeline")
		out    = fs.String("o", "-", "output file (\"-\" for stdout)")
		width  = fs.Int("width", 120, "timeline width in columns")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "trace export: exactly one trace file required")
		return 2
	}
	meta, events, err := readTrace(fs.Arg(0))
	if err != nil {
		return fail(err)
	}
	w := io.Writer(os.Stdout)
	if *out != "-" {
		f, err := os.Create(*out)
		if err != nil {
			return fail(err)
		}
		defer f.Close()
		w = f
	}
	switch *format {
	case "chrome":
		if err := trace.WriteChromeTrace(w, meta, events); err != nil {
			return fail(err)
		}
	case "timeline":
		if _, err := io.WriteString(w, trace.RenderTimeline(meta, events, 0, 0, *width)); err != nil {
			return fail(err)
		}
	default:
		fmt.Fprintf(os.Stderr, "trace export: unknown format %q\n", *format)
		return 2
	}
	return 0
}

// cmdCheck verifies the DCF invariants: over recorded files when given,
// otherwise live over every report-gated artifact at the gate's pinned
// profile (the same worlds the reproduction numbers come from).
func cmdCheck(args []string) int {
	fs := flag.NewFlagSet("trace check", flag.ContinueOnError)
	var (
		capacity = fs.Int("cap", 0, "flight-recorder ring capacity per run in live mode (default 4096)")
		parallel = fs.Int("parallel", runtime.GOMAXPROCS(0), "worker-pool size in live mode")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() > 0 {
		return checkFiles(fs.Args())
	}
	runner.SetLimit(*parallel)
	sets, err := report.LoadEmbedded()
	if err != nil {
		return fail(err)
	}
	cfg, err := report.SharedConfig(sets)
	if err != nil {
		return fail(err)
	}
	base, err := cfg.RunConfig()
	if err != nil {
		return fail(err)
	}
	fmt.Printf("checking %d artifacts at the report profile (seeds=%d duration=%s)\n",
		len(sets), cfg.Seeds, cfg.Duration)
	bad := 0
	for _, id := range report.Artifacts(sets) {
		coll := trace.NewCollector(*capacity)
		coll.EnableChecks()
		rc := base
		rc.Trace = coll
		start := time.Now()
		if _, err := experiments.Run(id, rc); err != nil {
			return fail(err)
		}
		if n := coll.ViolationCount(); n > 0 {
			bad += n
			fmt.Printf("%-6s %d worlds: %d VIOLATIONS\n", id, len(coll.Recordings()), n)
			for _, v := range coll.Violations() {
				fmt.Fprintf(os.Stderr, "  %s %s\n", id, v)
			}
		} else {
			fmt.Printf("%-6s %d worlds: clean (%.1fs)\n",
				id, len(coll.Recordings()), time.Since(start).Seconds())
		}
	}
	if bad > 0 {
		fmt.Fprintf(os.Stderr, "trace: %d invariant violations\n", bad)
		return 1
	}
	fmt.Println("all invariants hold")
	return 0
}

func checkFiles(paths []string) int {
	bad := 0
	for _, path := range paths {
		meta, events, err := readTrace(path)
		if err != nil {
			return fail(err)
		}
		ck := trace.NewChecker(meta.Timing)
		for _, e := range events {
			ck.Feed(e)
		}
		if n := ck.Count(); n > 0 {
			bad += n
			fmt.Printf("%s: %d events, %d VIOLATIONS\n", path, len(events), n)
			for _, v := range ck.Violations() {
				fmt.Fprintf(os.Stderr, "  %s\n", v)
			}
			if meta.Dropped > 0 {
				fmt.Fprintf(os.Stderr, "  note: ring dropped %d events; a truncated stream can "+
					"produce spurious violations — re-record with a larger -cap\n", meta.Dropped)
			}
		} else {
			fmt.Printf("%s: %d events, clean\n", path, len(events))
		}
	}
	if bad > 0 {
		fmt.Fprintf(os.Stderr, "trace: %d invariant violations\n", bad)
		return 1
	}
	return 0
}
