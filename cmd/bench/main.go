// Command bench runs the repo's performance benchmark suite and writes a
// machine-readable snapshot to BENCH_<date>.json in the current directory
// (override with -out). Commit the file alongside performance-relevant
// changes so regressions are visible in history.
//
// The snapshot records four groups:
//
//   - scheduler: micro-benchmarks of the event queue (churn, cancel-heavy,
//     wide-fanout), with ns/op and allocs/op;
//   - simulator: end-to-end event throughput of a saturated two-pair
//     802.11b hotspot (events/sec, allocs/op), measured three ways —
//     pooled (the default), unpooled (DisablePooling, the seed
//     allocation behaviour, so the pooled-vs-seed allocation win stays
//     visible in history), and traced (flight recorder attached);
//   - pools: end-of-run pool occupancy of one representative world
//     (chunks grown, live/free, get/put churn per recycler);
//   - artifacts: a wall-clock matrix regenerating a representative
//     artifact set at runner widths 1, 4, and GOMAXPROCS (each case
//     records its own gomaxprocs and parallel_limit), asserting the
//     outputs byte-identical across widths.
//
// Usage:
//
//	bench             # full suite, ~a minute
//	bench -quick      # shorter benchtime, smaller artifact set
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"testing"
	"time"

	"greedy80211/internal/experiments"
	"greedy80211/internal/phys"
	"greedy80211/internal/runner"
	"greedy80211/internal/scenario"
	"greedy80211/internal/sim"
	"greedy80211/internal/trace"
	"greedy80211/internal/versionflag"
)

type benchEntry struct {
	Name         string  `json:"name"`
	NsPerOp      float64 `json:"ns_per_op"`
	AllocsPerOp  int64   `json:"allocs_per_op"`
	BytesPerOp   int64   `json:"bytes_per_op"`
	EventsPerOp  float64 `json:"events_per_op,omitempty"`
	EventsPerSec float64 `json:"events_per_sec,omitempty"`
	// GOMAXPROCS records the proc count in effect while this case ran,
	// so per-case conditions survive into history even when the matrix
	// varies them.
	GOMAXPROCS int `json:"gomaxprocs"`
}

// runnerCase is one cell of the artifact wall-clock matrix: the worker
// pool pinned to ParallelLimit with runtime procs at GOMAXPROCS.
type runnerCase struct {
	ParallelLimit int     `json:"parallel_limit"`
	GOMAXPROCS    int     `json:"gomaxprocs"`
	Secs          float64 `json:"secs"`
	// Speedup is relative to the width-1 case of the same matrix.
	Speedup float64 `json:"speedup"`
}

type wallClock struct {
	Artifacts []string `json:"artifacts"`
	// Cases is the width matrix (1, 4, GOMAXPROCS — deduplicated). The
	// flat fields mirror the width-1 and widest cases for the report
	// footer, which quotes speedup and parallel_limit.
	Cases          []runnerCase `json:"cases"`
	SequentialSecs float64      `json:"sequential_secs"`
	ParallelSecs   float64      `json:"parallel_secs"`
	ParallelLimit  int          `json:"parallel_limit"`
	Speedup        float64      `json:"speedup"`
}

type snapshot struct {
	Date       string       `json:"date"`
	GoVersion  string       `json:"go_version"`
	GOMAXPROCS int          `json:"gomaxprocs"`
	GOOS       string       `json:"goos"`
	GOARCH     string       `json:"goarch"`
	Scheduler  []benchEntry `json:"scheduler"`
	Simulator  benchEntry   `json:"simulator"`
	// SimulatorUnpooled is the same workload with the frame/packet pools
	// disabled — the seed's per-exchange allocation behaviour. The gap to
	// Simulator is the pooled-vs-seed allocation report.
	SimulatorUnpooled benchEntry `json:"simulator_unpooled"`
	// SimulatorTraced is the same workload with a flight recorder attached
	// (medium tap + MAC probes on every station); compare against Simulator
	// to see the tracing overhead. Simulator itself runs with tracing
	// disabled, so its allocs/op doubles as the zero-cost-when-disabled
	// guard against earlier snapshots.
	SimulatorTraced benchEntry `json:"simulator_traced"`
	// Pools is the end-of-run pool occupancy of one representative pooled
	// world (seed 1, one simulated second).
	Pools scenario.PoolStats `json:"pools"`
	// DenseWorld compares neighbor-scoped delivery against the legacy
	// broadcast scan on a multi-BSS grid: identical worlds, identical
	// event streams, different per-transmit fan-out cost. The scoped
	// path's events/sec should track the (small) neighbor sets, not the
	// total radio count.
	DenseWorld denseWorldBench `json:"dense_world"`
	Artifacts  wallClock       `json:"artifacts"`
}

// denseWorldBench is the broadcast-vs-neighbor comparison matrix: the
// same per-cell workload at growing grid sizes. Scoped events/sec
// should stay roughly flat across rows (per-event cost tracks the
// constant neighbor count) while the broadcast scan degrades with the
// total radio count.
type denseWorldBench struct {
	Channels        int              `json:"channels"`
	StationsPerCell int              `json:"stations_per_cell"`
	Cases           []denseWorldCase `json:"cases"`
}

// denseWorldCase is one grid size of the matrix.
type denseWorldCase struct {
	Cells int `json:"cells"`
	// Radios is the total radio count (APs + stations).
	Radios int `json:"radios"`
	// AvgNeighbors is the mean per-radio co-channel in-CS-range neighbor
	// count — the fan-out the scoped path pays per transmission, versus
	// Radios-1 probed by the broadcast scan.
	AvgNeighbors float64    `json:"avg_neighbors"`
	Scoped       benchEntry `json:"scoped"`
	Broadcast    benchEntry `json:"broadcast"`
	// SpeedupScoped is Scoped.EventsPerSec / Broadcast.EventsPerSec.
	SpeedupScoped float64 `json:"speedup_scoped"`
}

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	fs := flag.NewFlagSet("bench", flag.ContinueOnError)
	var (
		outDir  = fs.String("out", ".", "directory for the BENCH_<date>.json snapshot")
		quick   = fs.Bool("quick", false, "shorter benchtime and a smaller artifact set")
		version = versionflag.Register(fs)
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if versionflag.Handle(version, os.Stdout, "bench") {
		return 0
	}

	snap := snapshot{
		Date:       time.Now().Format("2006-01-02"),
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
	}

	fmt.Println("scheduler micro-benchmarks:")
	for _, mb := range schedulerBenchmarks() {
		r := testing.Benchmark(mb.fn)
		e := toEntry(mb.name, r)
		snap.Scheduler = append(snap.Scheduler, e)
		fmt.Printf("  %-24s %10.2f ns/op %6d allocs/op\n", e.Name, e.NsPerOp, e.AllocsPerOp)
	}

	fmt.Println("simulator throughput:")
	snap.Simulator = toEntry("SimulatorThroughput", testing.Benchmark(benchSimulatorThroughput))
	fmt.Printf("  %-24s %10.0f events/sec %6d allocs/op\n",
		snap.Simulator.Name, snap.Simulator.EventsPerSec, snap.Simulator.AllocsPerOp)
	snap.SimulatorUnpooled = toEntry("SimulatorUnpooled", testing.Benchmark(benchSimulatorUnpooled))
	fmt.Printf("  %-24s %10.0f events/sec %6d allocs/op\n",
		snap.SimulatorUnpooled.Name, snap.SimulatorUnpooled.EventsPerSec, snap.SimulatorUnpooled.AllocsPerOp)
	if snap.SimulatorUnpooled.AllocsPerOp > 0 {
		fmt.Printf("  pooling cuts allocs/op %.1fx (%d -> %d)\n",
			float64(snap.SimulatorUnpooled.AllocsPerOp)/float64(max64(snap.Simulator.AllocsPerOp, 1)),
			snap.SimulatorUnpooled.AllocsPerOp, snap.Simulator.AllocsPerOp)
	}
	snap.SimulatorTraced = toEntry("SimulatorTraced", testing.Benchmark(benchSimulatorTraced))
	fmt.Printf("  %-24s %10.0f events/sec %6d allocs/op\n",
		snap.SimulatorTraced.Name, snap.SimulatorTraced.EventsPerSec, snap.SimulatorTraced.AllocsPerOp)
	if snap.Simulator.EventsPerSec > 0 {
		fmt.Printf("  tracing overhead: %.1f%% events/sec\n",
			100*(1-snap.SimulatorTraced.EventsPerSec/snap.Simulator.EventsPerSec))
	}

	pools, err := poolSnapshot()
	if err != nil {
		fmt.Fprintf(os.Stderr, "bench: %v\n", err)
		return 1
	}
	snap.Pools = pools
	fmt.Printf("pool occupancy (1 world, 1 sim-second): frames gets=%d chunks=%d, packets gets=%d chunks=%d, events gets=%d chunks=%d\n",
		pools.Frames.Gets, pools.Frames.Chunks, pools.Packets.Gets, pools.Packets.Chunks,
		pools.Events.Gets, pools.Events.Chunks)

	dense, err := denseWorldSnapshot(*quick)
	if err != nil {
		fmt.Fprintf(os.Stderr, "bench: %v\n", err)
		return 1
	}
	snap.DenseWorld = dense
	fmt.Printf("dense world (%d-channel plan, %d stations/cell, identical per-cell workload):\n",
		dense.Channels, dense.StationsPerCell)
	for _, c := range dense.Cases {
		fmt.Printf("  cells=%-4d radios=%-5d neighbors=%-5.1f scoped %10.0f events/sec, broadcast %10.0f events/sec (%.2fx)\n",
			c.Cells, c.Radios, c.AvgNeighbors,
			c.Scoped.EventsPerSec, c.Broadcast.EventsPerSec, c.SpeedupScoped)
	}

	ids := []string{"fig2", "fig5", "fig14", "tab1", "abl1"}
	if *quick {
		ids = []string{"fig2", "tab1"}
	}
	wc, err := measureArtifacts(ids)
	if err != nil {
		fmt.Fprintf(os.Stderr, "bench: %v\n", err)
		return 1
	}
	snap.Artifacts = wc
	fmt.Printf("artifact regeneration (%v):\n", ids)
	for _, c := range wc.Cases {
		fmt.Printf("  parallel=%-3d gomaxprocs=%-3d %6.2fs  speedup %.2fx\n",
			c.ParallelLimit, c.GOMAXPROCS, c.Secs, c.Speedup)
	}

	path := filepath.Join(*outDir, "BENCH_"+snap.Date+".json")
	doc, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "bench: %v\n", err)
		return 1
	}
	if err := os.WriteFile(path, append(doc, '\n'), 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "bench: %v\n", err)
		return 1
	}
	fmt.Printf("wrote %s\n", path)
	return 0
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

func toEntry(name string, r testing.BenchmarkResult) benchEntry {
	e := benchEntry{
		Name:        name,
		NsPerOp:     float64(r.NsPerOp()),
		AllocsPerOp: r.AllocsPerOp(),
		BytesPerOp:  r.AllocedBytesPerOp(),
		GOMAXPROCS:  runtime.GOMAXPROCS(0),
	}
	if v, ok := r.Extra["events/op"]; ok {
		e.EventsPerOp = v
	}
	if v, ok := r.Extra["events/sec"]; ok {
		e.EventsPerSec = v
	}
	return e
}

type microBench struct {
	name string
	fn   func(b *testing.B)
}

// schedulerBenchmarks mirrors the suite in internal/sim/sim_test.go; they
// are re-stated here because testing.Benchmark cannot invoke test-file
// benchmarks from another package.
func schedulerBenchmarks() []microBench {
	return []microBench{
		{"SchedulerChurn", func(b *testing.B) {
			b.ReportAllocs()
			s := sim.NewScheduler(1)
			n := 0
			var tick func()
			tick = func() {
				n++
				if n < b.N {
					s.Schedule(sim.Microsecond, tick)
				}
			}
			b.ResetTimer()
			s.Schedule(0, tick)
			s.Run()
		}},
		{"SchedulerCancelHeavy", func(b *testing.B) {
			b.ReportAllocs()
			s := sim.NewScheduler(1)
			n := 0
			var tick func()
			tick = func() {
				n++
				if n >= b.N {
					return
				}
				doomed := s.Schedule(50*sim.Microsecond, func() {})
				s.Schedule(sim.Microsecond, tick)
				s.Cancel(doomed)
			}
			b.ResetTimer()
			s.Schedule(0, tick)
			s.Run()
		}},
		{"SchedulerFanout", func(b *testing.B) {
			b.ReportAllocs()
			s := sim.NewScheduler(1)
			const width = 4096
			n := 0
			var tick func()
			tick = func() {
				n++
				if n < b.N {
					s.Schedule(sim.Time(width)*sim.Microsecond, tick)
				}
			}
			for i := 0; i < width; i++ {
				s.Schedule(sim.Time(i)*sim.Microsecond, tick)
			}
			b.ResetTimer()
			s.Run()
		}},
	}
}

func benchSimulatorThroughput(b *testing.B) {
	b.ReportAllocs()
	var events uint64
	for i := 0; i < b.N; i++ {
		w, err := scenario.BuildPairs(scenario.PairsConfig{
			Config:    scenario.Config{Seed: int64(i + 1), UseRTSCTS: true},
			N:         2,
			Transport: scenario.UDP,
		})
		if err != nil {
			b.Fatal(err)
		}
		w.Run(sim.Second)
		events += w.Sched.Executed()
	}
	b.ReportMetric(float64(events)/float64(b.N), "events/op")
	if secs := b.Elapsed().Seconds(); secs > 0 {
		b.ReportMetric(float64(events)/secs, "events/sec")
	}
}

// benchSimulatorTraced is benchSimulatorThroughput with a flight recorder
// (channel tap + per-station MAC probes) attached — the tracing-on cost.
func benchSimulatorTraced(b *testing.B) {
	b.ReportAllocs()
	var events uint64
	for i := 0; i < b.N; i++ {
		w, err := scenario.BuildPairs(scenario.PairsConfig{
			Config:    scenario.Config{Seed: int64(i + 1), UseRTSCTS: true},
			N:         2,
			Transport: scenario.UDP,
		})
		if err != nil {
			b.Fatal(err)
		}
		rec := trace.NewRecorder(0)
		w.AttachTrace(rec, rec)
		w.Run(sim.Second)
		events += w.Sched.Executed()
	}
	b.ReportMetric(float64(events)/float64(b.N), "events/op")
	if secs := b.Elapsed().Seconds(); secs > 0 {
		b.ReportMetric(float64(events)/secs, "events/sec")
	}
}

// measureArtifacts regenerates the given artifact set in quick mode at
// every runner width in the matrix (1, 4, GOMAXPROCS — deduplicated,
// ascending), pinning runtime procs to the width for each case, and
// asserts the outputs byte-identical across widths. The flat
// sequential/parallel fields mirror the narrowest and widest cases for
// the report footer.
func measureArtifacts(ids []string) (wallClock, error) {
	cfg := experiments.RunConfig{Quick: true, BaseSeed: 11}
	prevLimit := runner.Limit()
	defer runner.SetLimit(prevLimit)
	prevProcs := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(prevProcs)

	widths := []int{1}
	for _, w := range []int{4, prevProcs} {
		if w > widths[len(widths)-1] {
			widths = append(widths, w)
		}
	}

	regenerate := func() (map[string]string, time.Duration, error) {
		out := make(map[string]string, len(ids))
		start := time.Now()
		for _, id := range ids {
			res, err := experiments.Run(id, cfg)
			if err != nil {
				return nil, 0, fmt.Errorf("%s: %w", id, err)
			}
			out[id] = res.String()
		}
		return out, time.Since(start), nil
	}

	wc := wallClock{Artifacts: ids}
	var baseOut map[string]string
	for _, width := range widths {
		runtime.GOMAXPROCS(width)
		runner.SetLimit(width)
		out, dur, err := regenerate()
		if err != nil {
			return wallClock{}, err
		}
		if baseOut == nil {
			baseOut = out
		} else {
			for _, id := range ids {
				if out[id] != baseOut[id] {
					return wallClock{}, fmt.Errorf("%s: output at width %d differs from width %d",
						id, width, widths[0])
				}
			}
		}
		c := runnerCase{ParallelLimit: width, GOMAXPROCS: width, Secs: dur.Seconds()}
		if base := wc.Cases; len(base) > 0 && c.Secs > 0 {
			c.Speedup = base[0].Secs / c.Secs
		} else {
			c.Speedup = 1
		}
		wc.Cases = append(wc.Cases, c)
	}
	first, last := wc.Cases[0], wc.Cases[len(wc.Cases)-1]
	wc.SequentialSecs = first.Secs
	wc.ParallelSecs = last.Secs
	wc.ParallelLimit = last.ParallelLimit
	wc.Speedup = last.Speedup
	return wc, nil
}

// benchSimulatorUnpooled is benchSimulatorThroughput with the frame and
// packet pools disabled — the seed's allocation behaviour, kept measured
// so the pooled-vs-seed gap stays visible in committed snapshots.
func benchSimulatorUnpooled(b *testing.B) {
	b.ReportAllocs()
	var events uint64
	for i := 0; i < b.N; i++ {
		w, err := scenario.BuildPairs(scenario.PairsConfig{
			Config:    scenario.Config{Seed: int64(i + 1), UseRTSCTS: true, DisablePooling: true},
			N:         2,
			Transport: scenario.UDP,
		})
		if err != nil {
			b.Fatal(err)
		}
		w.Run(sim.Second)
		events += w.Sched.Executed()
	}
	b.ReportMetric(float64(events)/float64(b.N), "events/op")
	if secs := b.Elapsed().Seconds(); secs > 0 {
		b.ReportMetric(float64(events)/secs, "events/sec")
	}
}

// Dense-world comparison: grids of BSSs on a 3-channel plan with
// hotspot-scale (GRC evaluation) propagation, so each BSS
// carrier-senses only itself. Per-cell workload (stations, uplink mix,
// rate) is identical at every grid size: the scoped path's per-event
// cost should track the constant neighbor count while the broadcast
// scan's O(total radios) per-transmit probe grows with the grid.
const (
	denseWorldChannels = 3
	denseWorldStations = 20
	denseWorldUplink   = 5
	denseWorldRateBps  = 2e5
	denseWorldRun      = 500 * sim.Millisecond
)

// denseWorldGrids are the matrix's grid sizes: the 4×4 reference, then
// wider grids where the broadcast scan's radio-count term dominates.
var denseWorldGrids = []int{16, 49, 100}

func buildDenseWorld(seed int64, cells int, broadcast bool) (*scenario.World, error) {
	prop := phys.GRCPropagation()
	return scenario.BuildCells(scenario.CellsConfig{
		Config: scenario.Config{
			Seed:                   seed,
			Propagation:            &prop,
			DisableNeighborScoping: broadcast,
		},
		Topology: scenario.TopologySpec{
			NumCells:        cells,
			ChannelPlan:     []int{1, 6, 11},
			DefaultStations: denseWorldStations,
			DefaultUplink:   denseWorldUplink,
		},
		CBRRateBps: denseWorldRateBps,
	})
}

func benchDenseWorld(cells int, broadcast bool) func(b *testing.B) {
	return func(b *testing.B) {
		b.ReportAllocs()
		var events uint64
		for i := 0; i < b.N; i++ {
			w, err := buildDenseWorld(int64(i+1), cells, broadcast)
			if err != nil {
				b.Fatal(err)
			}
			w.Run(denseWorldRun)
			events += w.Sched.Executed()
		}
		b.ReportMetric(float64(events)/float64(b.N), "events/op")
		if secs := b.Elapsed().Seconds(); secs > 0 {
			b.ReportMetric(float64(events)/secs, "events/sec")
		}
	}
}

func denseWorldSnapshot(quick bool) (denseWorldBench, error) {
	d := denseWorldBench{
		Channels:        denseWorldChannels,
		StationsPerCell: denseWorldStations,
	}
	grids := denseWorldGrids
	if quick {
		grids = grids[:1]
	}
	for _, cells := range grids {
		c := denseWorldCase{Cells: cells, Radios: cells * (denseWorldStations + 1)}
		// Topology census on one instance of the world.
		w, err := buildDenseWorld(1, cells, false)
		if err != nil {
			return denseWorldBench{}, err
		}
		var total int
		for cell := 0; cell < cells; cell++ {
			ap, _ := w.Station(scenario.CellAPName(cell))
			total += w.Medium.NeighborCount(ap.ID)
			for s := 0; s < denseWorldStations; s++ {
				st, _ := w.Station(scenario.CellStationName(cell, s))
				total += w.Medium.NeighborCount(st.ID)
			}
		}
		c.AvgNeighbors = float64(total) / float64(c.Radios)
		name := fmt.Sprintf("DenseWorld%dCells", cells)
		c.Scoped = toEntry(name+"Scoped", testing.Benchmark(benchDenseWorld(cells, false)))
		c.Broadcast = toEntry(name+"Broadcast", testing.Benchmark(benchDenseWorld(cells, true)))
		if c.Broadcast.EventsPerSec > 0 {
			c.SpeedupScoped = c.Scoped.EventsPerSec / c.Broadcast.EventsPerSec
		}
		d.Cases = append(d.Cases, c)
	}
	return d, nil
}

// poolSnapshot runs one representative pooled world and reports its
// end-of-run pool occupancy.
func poolSnapshot() (scenario.PoolStats, error) {
	w, err := scenario.BuildPairs(scenario.PairsConfig{
		Config:    scenario.Config{Seed: 1, UseRTSCTS: true},
		N:         2,
		Transport: scenario.UDP,
	})
	if err != nil {
		return scenario.PoolStats{}, err
	}
	w.Run(sim.Second)
	return w.PoolStats(), nil
}
