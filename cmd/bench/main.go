// Command bench runs the repo's performance benchmark suite and writes a
// machine-readable snapshot to BENCH_<date>.json in the current directory
// (override with -out). Commit the file alongside performance-relevant
// changes so regressions are visible in history.
//
// The snapshot records three groups:
//
//   - scheduler: micro-benchmarks of the event queue (churn, cancel-heavy,
//     wide-fanout), with ns/op and allocs/op;
//   - simulator: end-to-end event throughput of a saturated two-pair
//     802.11b hotspot (events/sec, allocs/op);
//   - artifacts: wall-clock time to regenerate a representative artifact
//     set sequentially (-parallel 1) versus with the worker pool at
//     GOMAXPROCS, and the resulting speedup.
//
// Usage:
//
//	bench             # full suite, ~a minute
//	bench -quick      # shorter benchtime, smaller artifact set
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"testing"
	"time"

	"greedy80211/internal/experiments"
	"greedy80211/internal/runner"
	"greedy80211/internal/scenario"
	"greedy80211/internal/sim"
	"greedy80211/internal/trace"
	"greedy80211/internal/versionflag"
)

type benchEntry struct {
	Name         string  `json:"name"`
	NsPerOp      float64 `json:"ns_per_op"`
	AllocsPerOp  int64   `json:"allocs_per_op"`
	BytesPerOp   int64   `json:"bytes_per_op"`
	EventsPerOp  float64 `json:"events_per_op,omitempty"`
	EventsPerSec float64 `json:"events_per_sec,omitempty"`
}

type wallClock struct {
	Artifacts      []string `json:"artifacts"`
	SequentialSecs float64  `json:"sequential_secs"`
	ParallelSecs   float64  `json:"parallel_secs"`
	ParallelLimit  int      `json:"parallel_limit"`
	Speedup        float64  `json:"speedup"`
}

type snapshot struct {
	Date       string       `json:"date"`
	GoVersion  string       `json:"go_version"`
	GOMAXPROCS int          `json:"gomaxprocs"`
	GOOS       string       `json:"goos"`
	GOARCH     string       `json:"goarch"`
	Scheduler  []benchEntry `json:"scheduler"`
	Simulator  benchEntry   `json:"simulator"`
	// SimulatorTraced is the same workload with a flight recorder attached
	// (medium tap + MAC probes on every station); compare against Simulator
	// to see the tracing overhead. Simulator itself runs with tracing
	// disabled, so its allocs/op doubles as the zero-cost-when-disabled
	// guard against earlier snapshots.
	SimulatorTraced benchEntry `json:"simulator_traced"`
	Artifacts       wallClock  `json:"artifacts"`
}

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	fs := flag.NewFlagSet("bench", flag.ContinueOnError)
	var (
		outDir  = fs.String("out", ".", "directory for the BENCH_<date>.json snapshot")
		quick   = fs.Bool("quick", false, "shorter benchtime and a smaller artifact set")
		version = versionflag.Register(fs)
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if versionflag.Handle(version, os.Stdout, "bench") {
		return 0
	}

	snap := snapshot{
		Date:       time.Now().Format("2006-01-02"),
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
	}

	fmt.Println("scheduler micro-benchmarks:")
	for _, mb := range schedulerBenchmarks() {
		r := testing.Benchmark(mb.fn)
		e := toEntry(mb.name, r)
		snap.Scheduler = append(snap.Scheduler, e)
		fmt.Printf("  %-24s %10.2f ns/op %6d allocs/op\n", e.Name, e.NsPerOp, e.AllocsPerOp)
	}

	fmt.Println("simulator throughput:")
	snap.Simulator = toEntry("SimulatorThroughput", testing.Benchmark(benchSimulatorThroughput))
	fmt.Printf("  %-24s %10.0f events/sec %6d allocs/op\n",
		snap.Simulator.Name, snap.Simulator.EventsPerSec, snap.Simulator.AllocsPerOp)
	snap.SimulatorTraced = toEntry("SimulatorTraced", testing.Benchmark(benchSimulatorTraced))
	fmt.Printf("  %-24s %10.0f events/sec %6d allocs/op\n",
		snap.SimulatorTraced.Name, snap.SimulatorTraced.EventsPerSec, snap.SimulatorTraced.AllocsPerOp)
	if snap.Simulator.EventsPerSec > 0 {
		fmt.Printf("  tracing overhead: %.1f%% events/sec\n",
			100*(1-snap.SimulatorTraced.EventsPerSec/snap.Simulator.EventsPerSec))
	}

	ids := []string{"fig2", "fig5", "fig14", "tab1", "abl1"}
	if *quick {
		ids = []string{"fig2", "tab1"}
	}
	wc, err := measureArtifacts(ids)
	if err != nil {
		fmt.Fprintf(os.Stderr, "bench: %v\n", err)
		return 1
	}
	snap.Artifacts = wc
	fmt.Printf("artifact regeneration (%v):\n  sequential %.2fs  parallel(%d) %.2fs  speedup %.2fx\n",
		ids, wc.SequentialSecs, wc.ParallelLimit, wc.ParallelSecs, wc.Speedup)

	path := filepath.Join(*outDir, "BENCH_"+snap.Date+".json")
	doc, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "bench: %v\n", err)
		return 1
	}
	if err := os.WriteFile(path, append(doc, '\n'), 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "bench: %v\n", err)
		return 1
	}
	fmt.Printf("wrote %s\n", path)
	return 0
}

func toEntry(name string, r testing.BenchmarkResult) benchEntry {
	e := benchEntry{
		Name:        name,
		NsPerOp:     float64(r.NsPerOp()),
		AllocsPerOp: r.AllocsPerOp(),
		BytesPerOp:  r.AllocedBytesPerOp(),
	}
	if v, ok := r.Extra["events/op"]; ok {
		e.EventsPerOp = v
	}
	if v, ok := r.Extra["events/sec"]; ok {
		e.EventsPerSec = v
	}
	return e
}

type microBench struct {
	name string
	fn   func(b *testing.B)
}

// schedulerBenchmarks mirrors the suite in internal/sim/sim_test.go; they
// are re-stated here because testing.Benchmark cannot invoke test-file
// benchmarks from another package.
func schedulerBenchmarks() []microBench {
	return []microBench{
		{"SchedulerChurn", func(b *testing.B) {
			b.ReportAllocs()
			s := sim.NewScheduler(1)
			n := 0
			var tick func()
			tick = func() {
				n++
				if n < b.N {
					s.Schedule(sim.Microsecond, tick)
				}
			}
			b.ResetTimer()
			s.Schedule(0, tick)
			s.Run()
		}},
		{"SchedulerCancelHeavy", func(b *testing.B) {
			b.ReportAllocs()
			s := sim.NewScheduler(1)
			n := 0
			var tick func()
			tick = func() {
				n++
				if n >= b.N {
					return
				}
				doomed := s.Schedule(50*sim.Microsecond, func() {})
				s.Schedule(sim.Microsecond, tick)
				s.Cancel(doomed)
			}
			b.ResetTimer()
			s.Schedule(0, tick)
			s.Run()
		}},
		{"SchedulerFanout", func(b *testing.B) {
			b.ReportAllocs()
			s := sim.NewScheduler(1)
			const width = 4096
			n := 0
			var tick func()
			tick = func() {
				n++
				if n < b.N {
					s.Schedule(sim.Time(width)*sim.Microsecond, tick)
				}
			}
			for i := 0; i < width; i++ {
				s.Schedule(sim.Time(i)*sim.Microsecond, tick)
			}
			b.ResetTimer()
			s.Run()
		}},
	}
}

func benchSimulatorThroughput(b *testing.B) {
	b.ReportAllocs()
	var events uint64
	for i := 0; i < b.N; i++ {
		w, err := scenario.BuildPairs(scenario.PairsConfig{
			Config:    scenario.Config{Seed: int64(i + 1), UseRTSCTS: true},
			N:         2,
			Transport: scenario.UDP,
		})
		if err != nil {
			b.Fatal(err)
		}
		w.Run(sim.Second)
		events += w.Sched.Executed()
	}
	b.ReportMetric(float64(events)/float64(b.N), "events/op")
	if secs := b.Elapsed().Seconds(); secs > 0 {
		b.ReportMetric(float64(events)/secs, "events/sec")
	}
}

// benchSimulatorTraced is benchSimulatorThroughput with a flight recorder
// (channel tap + per-station MAC probes) attached — the tracing-on cost.
func benchSimulatorTraced(b *testing.B) {
	b.ReportAllocs()
	var events uint64
	for i := 0; i < b.N; i++ {
		w, err := scenario.BuildPairs(scenario.PairsConfig{
			Config:    scenario.Config{Seed: int64(i + 1), UseRTSCTS: true},
			N:         2,
			Transport: scenario.UDP,
		})
		if err != nil {
			b.Fatal(err)
		}
		rec := trace.NewRecorder(0)
		w.AttachTrace(rec, rec)
		w.Run(sim.Second)
		events += w.Sched.Executed()
	}
	b.ReportMetric(float64(events)/float64(b.N), "events/op")
	if secs := b.Elapsed().Seconds(); secs > 0 {
		b.ReportMetric(float64(events)/secs, "events/sec")
	}
}

// measureArtifacts regenerates the given artifact set twice in quick mode:
// once with the worker pool pinned to 1 and once at GOMAXPROCS. The outputs
// are asserted byte-identical while we're at it.
func measureArtifacts(ids []string) (wallClock, error) {
	cfg := experiments.RunConfig{Quick: true, BaseSeed: 11}
	prev := runner.Limit()
	defer runner.SetLimit(prev)

	regenerate := func() (map[string]string, time.Duration, error) {
		out := make(map[string]string, len(ids))
		start := time.Now()
		for _, id := range ids {
			res, err := experiments.Run(id, cfg)
			if err != nil {
				return nil, 0, fmt.Errorf("%s: %w", id, err)
			}
			out[id] = res.String()
		}
		return out, time.Since(start), nil
	}

	runner.SetLimit(1)
	seqOut, seqDur, err := regenerate()
	if err != nil {
		return wallClock{}, err
	}
	limit := runtime.GOMAXPROCS(0)
	runner.SetLimit(limit)
	parOut, parDur, err := regenerate()
	if err != nil {
		return wallClock{}, err
	}
	for _, id := range ids {
		if seqOut[id] != parOut[id] {
			return wallClock{}, fmt.Errorf("%s: parallel output differs from sequential", id)
		}
	}
	return wallClock{
		Artifacts:      ids,
		SequentialSecs: seqDur.Seconds(),
		ParallelSecs:   parDur.Seconds(),
		ParallelLimit:  limit,
		Speedup:        seqDur.Seconds() / parDur.Seconds(),
	}, nil
}
