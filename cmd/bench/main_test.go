package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"sort"
	"testing"
)

// committedSnapshot decodes the newest BENCH_*.json at the repo root. The
// decode is local to this test: report.BenchSnapshot deliberately drops
// allocation fields, and the guard below needs them.
func committedSnapshot(t *testing.T) snapshot {
	t.Helper()
	matches, err := filepath.Glob(filepath.Join("..", "..", "BENCH_*.json"))
	if err != nil || len(matches) == 0 {
		t.Fatalf("no committed BENCH_*.json: %v %v", matches, err)
	}
	sort.Strings(matches) // BENCH_<ISO date> sorts chronologically
	raw, err := os.ReadFile(matches[len(matches)-1])
	if err != nil {
		t.Fatal(err)
	}
	var snap snapshot
	if err := json.Unmarshal(raw, &snap); err != nil {
		t.Fatalf("%s: %v", matches[len(matches)-1], err)
	}
	return snap
}

// TestDisabledTracingAddsNoAllocs is the zero-cost-when-disabled guard:
// the untraced simulator workload must not allocate more per op than the
// committed snapshot recorded (±1% slack for Go-version noise). The MAC
// probe sites and the medium tap hook are on this path, so any
// probe-related allocation that leaks into the disabled case shows up
// here as a regression against history.
func TestDisabledTracingAddsNoAllocs(t *testing.T) {
	if testing.Short() {
		t.Skip("benchmark-backed guard")
	}
	base := committedSnapshot(t)
	if base.Simulator.AllocsPerOp == 0 {
		t.Fatalf("snapshot %s has no simulator allocs baseline", base.Date)
	}
	r := testing.Benchmark(benchSimulatorThroughput)
	got := r.AllocsPerOp()
	limit := base.Simulator.AllocsPerOp + base.Simulator.AllocsPerOp/100
	if got > limit {
		t.Errorf("untraced simulator allocs/op = %d, committed baseline %d (+1%% = %d): "+
			"disabled tracing is no longer free", got, base.Simulator.AllocsPerOp, limit)
	}
	t.Logf("untraced allocs/op = %d (baseline %d)", got, base.Simulator.AllocsPerOp)
}
