package main

import (
	"encoding/json"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"greedy80211/internal/campaignd"
)

func TestFlagValidation(t *testing.T) {
	if got := run([]string{"-version"}); got != 0 {
		t.Errorf("-version exited %d", got)
	}
	if got := run(nil); got != 2 {
		t.Errorf("missing -store exited %d, want 2", got)
	}
	if got := run([]string{"-store", t.TempDir(), "-addr", "256.0.0.1:bad"}); got != 1 {
		t.Errorf("bad -addr exited %d, want 1", got)
	}
}

// TestServeAndDrainOnSIGTERM runs the real main loop: bind an ephemeral
// port, publish it via -addr-file, serve a preloaded spec, then SIGTERM
// the process and require a clean (exit 0) drain.
func TestServeAndDrainOnSIGTERM(t *testing.T) {
	dir := t.TempDir()
	spec := filepath.Join(dir, "spec.json")
	if err := os.WriteFile(spec, []byte(`{"artifacts": ["tab3"], "config": {"seeds": 1, "duration": "100ms", "quick": true}}`), 0o644); err != nil {
		t.Fatal(err)
	}
	addrFile := filepath.Join(dir, "addr")
	done := make(chan int, 1)
	go func() {
		done <- run([]string{
			"-store", filepath.Join(dir, "store"),
			"-addr", "127.0.0.1:0",
			"-addr-file", addrFile,
			"-spec", spec,
		})
	}()

	var addr string
	for deadline := time.Now().Add(10 * time.Second); time.Now().Before(deadline); time.Sleep(20 * time.Millisecond) {
		if b, err := os.ReadFile(addrFile); err == nil && len(b) > 0 {
			addr = strings.TrimSpace(string(b))
			break
		}
		select {
		case code := <-done:
			t.Fatalf("server exited early with %d", code)
		default:
		}
	}
	if addr == "" {
		t.Fatal("server never published its address")
	}

	resp, err := http.Get("http://" + addr + "/v1/campaigns")
	if err != nil {
		t.Fatal(err)
	}
	var list campaignd.CampaignList
	if err := json.NewDecoder(resp.Body).Decode(&list); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(list.Campaigns) != 1 || list.Campaigns[0].Total != 1 {
		t.Fatalf("preloaded spec not registered: %+v", list)
	}

	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case code := <-done:
		if code != 0 {
			t.Fatalf("drain exited %d, want 0", code)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("server did not drain after SIGTERM")
	}
}
