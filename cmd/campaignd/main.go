// Command campaignd serves a content-addressed campaign store over
// HTTP: cached results, metrics, gate verdicts, and trace renders as
// conditional JSON, plus the lease protocol that fans campaign units out
// to `campaign worker` processes.
//
// Usage:
//
//	campaignd -store .campaign -addr :8080
//	campaignd -store .campaign -addr 127.0.0.1:0 -addr-file /tmp/addr \
//	          -spec spec.json -lease-ttl 30s
//
// The server owns the store's write-ahead journal while running: lease
// grants journal "start", commits journal "done", so `campaign status`
// against the same store shows in-flight units even while they are being
// computed on other machines. SIGINT/SIGTERM drains gracefully — the
// listener closes, in-flight requests finish (bounded by -drain), and
// the journal closes last.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"syscall"
	"time"

	"greedy80211/internal/campaign"
	"greedy80211/internal/campaignd"
	"greedy80211/internal/core"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	fs := flag.NewFlagSet("campaignd", flag.ContinueOnError)
	var (
		storeDir = fs.String("store", "", "result store directory (required; created if absent)")
		addr     = fs.String("addr", "127.0.0.1:8080", "listen address (host:port; port 0 picks a free port)")
		addrFile = fs.String("addr-file", "", "write the actual listen address to this file once bound (for scripts and tests)")
		specPath = fs.String("spec", "", "campaign spec to register at startup (workers can lease it immediately)")
		leaseTTL = fs.Duration("lease-ttl", 30*time.Second, "worker lease TTL; a lease not heartbeated within this window is re-issued")
		maxFail  = fs.Int("max-unit-failures", 3, "worker-reported failures before a unit is retired")
		drain    = fs.Duration("drain", 10*time.Second, "graceful-shutdown grace for in-flight requests")
		version  = fs.Bool("version", false, "print the module fingerprint and exit")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *version {
		fmt.Printf("campaignd %s\n", core.ModuleFingerprint())
		return 0
	}
	if *storeDir == "" {
		fmt.Fprintln(os.Stderr, "campaignd: -store required")
		return 2
	}
	store, err := campaign.OpenStore(*storeDir)
	if err != nil {
		fmt.Fprintf(os.Stderr, "campaignd: %v\n", err)
		return 1
	}
	srv, err := campaignd.New(campaignd.Config{
		Store:           store,
		LeaseTTL:        *leaseTTL,
		MaxUnitFailures: *maxFail,
		DrainTimeout:    *drain,
		Logf: func(format string, args ...any) {
			fmt.Printf(format+"\n", args...)
		},
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "campaignd: %v\n", err)
		return 1
	}
	if *specPath != "" {
		spec, err := campaign.LoadSpec(*specPath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "campaignd: %v\n", err)
			return 1
		}
		id, err := srv.Register(spec)
		if err != nil {
			fmt.Fprintf(os.Stderr, "campaignd: registering %s: %v\n", *specPath, err)
			return 1
		}
		fmt.Printf("campaignd: campaign %s ready for workers\n", id)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "campaignd: %v\n", err)
		return 1
	}
	bound := ln.Addr().String()
	if *addrFile != "" {
		if err := os.WriteFile(*addrFile, []byte(bound+"\n"), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "campaignd: writing -addr-file: %v\n", err)
			ln.Close()
			return 1
		}
	}
	fmt.Printf("campaignd: serving %s on http://%s\n", *storeDir, bound)

	ctx, cancel := context.WithCancel(context.Background())
	sigc := make(chan os.Signal, 2)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sigc)
	go func() {
		sig := <-sigc
		fmt.Fprintf(os.Stderr, "campaignd: received %v; draining (signal again to force-quit)\n", sig)
		cancel()
		<-sigc
		fmt.Fprintln(os.Stderr, "campaignd: second signal; exiting now")
		os.Exit(130)
	}()
	if err := srv.Serve(ctx, ln); err != nil {
		fmt.Fprintf(os.Stderr, "campaignd: %v\n", err)
		return 1
	}
	fmt.Println("campaignd: drained; store and journal are consistent")
	return 0
}
