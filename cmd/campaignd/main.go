// Command campaignd serves a content-addressed campaign store over
// HTTP: cached results, metrics, gate verdicts, and trace renders as
// conditional JSON, plus the lease protocol that fans campaign units out
// to `campaign worker` processes.
//
// Usage:
//
//	campaignd -store .campaign -addr :8080
//	campaignd -store .campaign -addr 127.0.0.1:0 -addr-file /tmp/addr \
//	          -spec spec.json -lease-ttl 30s
//
// Observability: structured logs go to stderr (-log-format text|json,
// -log-level), Prometheus metrics are at GET /metrics, liveness at
// /healthz, readiness at /readyz, and live campaign progress at
// GET /v1/progress. -debug-addr opens a second listener with net/http/pprof
// profiles (plus /metrics and /healthz) that is never exposed on the
// main address.
//
// The server owns the store's write-ahead journal while running: lease
// grants journal "start", commits journal "done", so `campaign status`
// against the same store shows in-flight units even while they are being
// computed on other machines. SIGINT/SIGTERM drains gracefully — /readyz
// flips to 503, the listener stays open for -drain-delay, then closes,
// in-flight requests finish (bounded by -drain), and the journal closes
// last.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"greedy80211/internal/campaign"
	"greedy80211/internal/campaignd"
	"greedy80211/internal/core"
	"greedy80211/internal/obs"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	fs := flag.NewFlagSet("campaignd", flag.ContinueOnError)
	var (
		storeDir   = fs.String("store", "", "result store directory (required; created if absent)")
		addr       = fs.String("addr", "127.0.0.1:8080", "listen address (host:port; port 0 picks a free port)")
		addrFile   = fs.String("addr-file", "", "write the actual listen address to this file once bound (for scripts and tests)")
		specPath   = fs.String("spec", "", "campaign spec to register at startup (workers can lease it immediately)")
		leaseTTL   = fs.Duration("lease-ttl", 30*time.Second, "worker lease TTL; a lease not heartbeated within this window is re-issued")
		maxFail    = fs.Int("max-unit-failures", 3, "worker-reported failures before a unit is retired")
		drain      = fs.Duration("drain", 10*time.Second, "graceful-shutdown grace for in-flight requests")
		drainDelay = fs.Duration("drain-delay", 0, "keep the listener open this long after /readyz flips to 503 (load-balancer grace)")
		debugAddr  = fs.String("debug-addr", "", "optional second listener with net/http/pprof profiles (never exposed on -addr)")
		version    = fs.Bool("version", false, "print the module fingerprint and exit")
		logCfg     = obs.RegisterLogFlags(fs)
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *version {
		fmt.Printf("campaignd %s\n", core.ModuleFingerprint())
		return 0
	}
	if *storeDir == "" {
		fmt.Fprintln(os.Stderr, "campaignd: -store required")
		return 2
	}
	logger, err := logCfg.Logger(os.Stderr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "campaignd: %v\n", err)
		return 2
	}
	store, err := campaign.OpenStore(*storeDir)
	if err != nil {
		fmt.Fprintf(os.Stderr, "campaignd: %v\n", err)
		return 1
	}
	srv, err := campaignd.New(campaignd.Config{
		Store:           store,
		LeaseTTL:        *leaseTTL,
		MaxUnitFailures: *maxFail,
		DrainTimeout:    *drain,
		DrainDelay:      *drainDelay,
		Logger:          logger,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "campaignd: %v\n", err)
		return 1
	}
	if *specPath != "" {
		spec, err := campaign.LoadSpec(*specPath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "campaignd: %v\n", err)
			return 1
		}
		id, err := srv.Register(spec)
		if err != nil {
			fmt.Fprintf(os.Stderr, "campaignd: registering %s: %v\n", *specPath, err)
			return 1
		}
		fmt.Printf("campaignd: campaign %s ready for workers\n", id)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "campaignd: %v\n", err)
		return 1
	}
	bound := ln.Addr().String()
	if *addrFile != "" {
		if err := os.WriteFile(*addrFile, []byte(bound+"\n"), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "campaignd: writing -addr-file: %v\n", err)
			ln.Close()
			return 1
		}
	}
	fmt.Printf("campaignd: serving %s on http://%s\n", *storeDir, bound)

	// The debug listener is opt-in and independent of the main surface:
	// pprof profiles plus /metrics and /healthz, reachable even when the
	// main handler is saturated. It dies with the process — no drain.
	if *debugAddr != "" {
		dln, err := net.Listen("tcp", *debugAddr)
		if err != nil {
			fmt.Fprintf(os.Stderr, "campaignd: -debug-addr: %v\n", err)
			ln.Close()
			return 1
		}
		logger.Info("debug listener up", "addr", dln.Addr().String())
		go func() {
			dsrv := &http.Server{Handler: srv.DebugHandler(), ReadHeaderTimeout: 10 * time.Second}
			if err := dsrv.Serve(dln); err != nil && err != http.ErrServerClosed {
				logger.Warn("debug listener failed", "error", err)
			}
		}()
	}

	ctx, cancel := context.WithCancel(context.Background())
	sigc := make(chan os.Signal, 2)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sigc)
	go func() {
		sig := <-sigc
		fmt.Fprintf(os.Stderr, "campaignd: received %v; draining (signal again to force-quit)\n", sig)
		cancel()
		<-sigc
		fmt.Fprintln(os.Stderr, "campaignd: second signal; exiting now")
		os.Exit(130)
	}()
	if err := srv.Serve(ctx, ln); err != nil {
		fmt.Fprintf(os.Stderr, "campaignd: %v\n", err)
		return 1
	}
	fmt.Println("campaignd: drained; store and journal are consistent")
	return 0
}
