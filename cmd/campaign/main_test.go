package main

import (
	"encoding/json"
	"io"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"greedy80211/internal/campaign"
	"greedy80211/internal/campaignd"
	"greedy80211/internal/obs"
)

func TestSubcommandExitCodes(t *testing.T) {
	store := t.TempDir()
	out := t.TempDir()
	tests := []struct {
		name string
		args []string
		want int
	}{
		{"no args", nil, 2},
		{"help", []string{"help"}, 0},
		{"unknown subcommand", []string{"frobnicate"}, 2},
		{"run without store", []string{"run", "-artifacts", "tab3"}, 2},
		{"run without spec or artifacts", []string{"run", "-store", store}, 2},
		{"run bad shard", []string{"run", "-store", store, "-artifacts", "tab3", "-shard", "2/2"}, 2},
		{"run unknown artifact", []string{"run", "-store", store, "-artifacts", "fig999"}, 1},
		{"run tab3", []string{"run", "-store", store, "-out", out,
			"-artifacts", "tab3", "-quick", "-duration", "100ms"}, 0},
		{"status", []string{"status", "-store", store,
			"-artifacts", "tab3", "-quick", "-duration", "100ms"}, 0},
		{"gc dry run", []string{"gc", "-store", store, "-dry-run",
			"-artifacts", "tab3", "-quick", "-duration", "100ms"}, 0},
		{"verify sound store", []string{"verify", "-store", store}, 0},
		{"verify without store", []string{"verify"}, 2},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := run(tt.args); got != tt.want {
				t.Errorf("run(%v) = %d, want %d", tt.args, got, tt.want)
			}
		})
	}
	// The run above must have assembled tab3's result and the sidecar.
	for _, name := range []string{"tab3.json", "metrics.jsonl"} {
		if _, err := os.Stat(filepath.Join(out, name)); err != nil {
			t.Errorf("assembled output %s missing: %v", name, err)
		}
	}
}

func TestVerifyFlagsCorruption(t *testing.T) {
	store := t.TempDir()
	if got := run([]string{"run", "-store", store, "-artifacts", "tab3", "-quick", "-duration", "100ms"}); got != 0 {
		t.Fatalf("seed run exited %d", got)
	}
	objects, err := filepath.Glob(filepath.Join(store, "objects", "*", "*", "result.json"))
	if err != nil || len(objects) != 1 {
		t.Fatalf("objects: %v (%d)", err, len(objects))
	}
	if err := os.WriteFile(objects[0], []byte("{}"), 0o644); err != nil {
		t.Fatal(err)
	}
	if got := run([]string{"verify", "-store", store}); got != 1 {
		t.Errorf("verify on a corrupted store exited %d, want 1", got)
	}
}

func TestSpecFileRoundTrip(t *testing.T) {
	dir := t.TempDir()
	spec := filepath.Join(dir, "spec.json")
	body := `{"artifacts": ["tab3"], "config": {"seeds": 1, "duration": "100ms", "quick": true}}`
	if err := os.WriteFile(spec, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	store := filepath.Join(dir, "store")
	if got := run([]string{"run", "-spec", spec, "-store", store}); got != 0 {
		t.Fatalf("run -spec exited %d", got)
	}
	// Typos in a spec must fail loudly, not run the defaults.
	bad := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(bad, []byte(`{"artifact": ["tab3"]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if got := run([]string{"run", "-spec", bad, "-store", store}); got != 2 {
		t.Errorf("run with a misspelled spec field exited %d, want 2", got)
	}
}

func TestShardedRunsCoverDisjointUnits(t *testing.T) {
	dir := t.TempDir()
	store := filepath.Join(dir, "store")
	args := func(extra ...string) []string {
		return append([]string{"run", "-store", store,
			"-artifacts", "tab1,tab3", "-quick", "-duration", "100ms"}, extra...)
	}
	if got := run(args("-shard", "0/2")); got != 0 {
		t.Fatalf("shard 0/2 exited %d", got)
	}
	if got := run(args("-shard", "1/2")); got != 0 {
		t.Fatalf("shard 1/2 exited %d", got)
	}
	out := filepath.Join(dir, "out")
	if got := run(args("-out", out)); got != 0 {
		t.Fatalf("merge run exited %d", got)
	}
	b, err := os.ReadFile(filepath.Join(out, "tab1.json"))
	if err != nil || !strings.Contains(string(b), "\"id\": \"tab1\"") {
		t.Errorf("assembled tab1.json wrong: %v / %.60s", err, b)
	}
}

// captureStdout runs fn with os.Stdout redirected to a pipe and returns
// what it printed.
func captureStdout(t *testing.T, fn func()) string {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	defer func() { os.Stdout = old }()
	fn()
	w.Close()
	b, err := io.ReadAll(r)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

func TestStatusJSONMatchesSharedCodec(t *testing.T) {
	store := t.TempDir()
	args := []string{"-store", store, "-artifacts", "tab3", "-quick", "-duration", "100ms"}
	if got := run(append([]string{"run"}, args...)); got != 0 {
		t.Fatalf("seed run exited %d", got)
	}
	out := captureStdout(t, func() {
		if got := run(append([]string{"status", "-json"}, args...)); got != 0 {
			t.Errorf("status -json exited %d", got)
		}
	})
	var doc campaign.StatusDoc
	if err := json.Unmarshal([]byte(out), &doc); err != nil {
		t.Fatalf("status -json is not the shared codec: %v\n%s", err, out)
	}
	if doc.Total != 1 || doc.Done != 1 || doc.Units[0].State != campaign.UnitDone {
		t.Errorf("status doc: %+v", doc)
	}
	if doc.Units[0].Artifact != "tab3" || len(doc.Units[0].Key) != 64 {
		t.Errorf("unit identity: %+v", doc.Units[0])
	}
}

func TestSubmitAndWorkerAgainstServer(t *testing.T) {
	storeDir := t.TempDir()
	st, err := campaign.OpenStore(storeDir)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := campaignd.New(campaignd.Config{Store: st, Logger: obs.LogfLogger(t.Logf)})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	dir := t.TempDir()
	spec := filepath.Join(dir, "spec.json")
	body := `{"artifacts": ["tab3"], "config": {"seeds": 1, "duration": "100ms", "quick": true}}`
	if err := os.WriteFile(spec, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}

	out := captureStdout(t, func() {
		if got := run([]string{"submit", "-spec", spec, "-server", ts.URL}); got != 0 {
			t.Errorf("submit exited %d", got)
		}
	})
	lines := strings.Fields(strings.TrimSpace(out))
	id := lines[len(lines)-1]
	if len(id) != 16 {
		t.Fatalf("submit did not print a campaign id: %q", out)
	}

	if got := run([]string{"worker", "-server", ts.URL, "-campaign", id, "-name", "test-worker"}); got != 0 {
		t.Fatalf("worker exited %d", got)
	}
	keys, err := st.Keys()
	if err != nil || len(keys) != 1 {
		t.Fatalf("store after worker: %v keys, %v", keys, err)
	}
	if err := st.VerifyEntry(keys[0]); err != nil {
		t.Errorf("worker-computed entry: %v", err)
	}

	// A second worker on the finished campaign exits clean immediately.
	if got := run([]string{"worker", "-server", ts.URL, "-campaign", id}); got != 0 {
		t.Errorf("worker on a done campaign exited %d", got)
	}

	// The live progress view over the same server: -follow exits 0 as
	// soon as the server reports everything complete.
	out = captureStdout(t, func() {
		if got := run([]string{"status", "-server", ts.URL, "-follow", "-every", "10ms"}); got != 0 {
			t.Errorf("status -follow exited %d", got)
		}
	})
	if !strings.Contains(out, "campaign "+id) || !strings.Contains(out, "all campaigns complete") {
		t.Errorf("status -follow output:\n%s", out)
	}
	if !strings.Contains(out, "test-worker") {
		t.Errorf("status -follow shows no worker fleet:\n%s", out)
	}

	// The span log the server wrote beside the journal renders as a
	// Chrome trace (Perfetto-loadable): one JSON object with traceEvents
	// carrying the unit lifecycle, on the worker's named track.
	traceFile := filepath.Join(dir, "spans.json")
	if got := run([]string{"spans", "-store", storeDir, "-out", traceFile}); got != 0 {
		t.Fatalf("spans exited %d", got)
	}
	b, err := os.ReadFile(traceFile)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string  `json:"name"`
			Cat  string  `json:"cat"`
			Ph   string  `json:"ph"`
			Ts   float64 `json:"ts"`
			Dur  float64 `json:"dur"`
			Args map[string]any
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(b, &doc); err != nil {
		t.Fatalf("spans output is not Chrome trace JSON: %v", err)
	}
	cats := map[string]int{}
	trackNamed := false
	for _, ev := range doc.TraceEvents {
		if ev.Ph == "X" {
			cats[ev.Cat]++
			if ev.Ts < 0 || ev.Dur < 0 {
				t.Errorf("negative span timing: %+v", ev)
			}
		}
		if ev.Name == "thread_name" {
			if name, _ := ev.Args["name"].(string); name == "test-worker" {
				trackNamed = true
			}
		}
	}
	if cats["expand"] != 1 || cats["lease"] != 1 || cats["upload"] != 1 || cats["commit"] != 1 {
		t.Errorf("span categories: %v", cats)
	}
	if !trackNamed {
		t.Error("no track named after the worker")
	}
}

func TestServerSubcommandFlagValidation(t *testing.T) {
	if got := run([]string{"submit", "-spec", "x.json"}); got != 2 {
		t.Errorf("submit without -server exited %d, want 2", got)
	}
	if got := run([]string{"worker", "-server", "http://x"}); got != 2 {
		t.Errorf("worker without -campaign exited %d, want 2", got)
	}
	if got := run([]string{"status"}); got != 2 {
		t.Errorf("status without -store or -server exited %d, want 2", got)
	}
	if got := run([]string{"spans"}); got != 2 {
		t.Errorf("spans without -store exited %d, want 2", got)
	}
	if got := run([]string{"spans", "-store", t.TempDir()}); got != 1 {
		t.Errorf("spans on an empty store exited %d, want 1", got)
	}
}
