// Command campaign drives durable, resumable, shardable experiment
// campaigns over the content-addressed result store.
//
// Usage:
//
//	campaign run -spec spec.json -store .campaign -out results/
//	campaign run -artifacts fig1,fig4 -seeds 5 -duration 5s -store .campaign
//	campaign run -spec spec.json -store /shared/store -shard 0/2
//	campaign run -spec spec.json -store .campaign -screen
//	campaign status -spec spec.json -store .campaign [-json]
//	campaign gc -spec spec.json -store .campaign
//	campaign verify -store .campaign
//	campaign submit -spec spec.json -server http://host:8080
//	campaign worker -server http://host:8080 -campaign <id>
//
// A campaign expands into a deterministic work-list of units (artifact ×
// config × base seed). Units already in the store are skipped, so
// re-running after an interrupt (Ctrl-C, crash, power loss) resumes
// where it stopped, and a warm rerun does zero simulation work. With
// -shard i/n independent processes compute disjoint slices of the
// work-list against a shared store; once the store is complete, any run
// with -out assembles results byte-identically to a single sequential
// cmd/experiments invocation.
//
// submit and worker speak to a campaignd server instead of a local
// store: submit registers the spec and prints the campaign id, worker
// pulls per-unit leases over HTTP, heartbeats while computing, and
// uploads results until the campaign is done.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"syscall"

	"greedy80211/internal/campaign"
	"greedy80211/internal/campaignd/client"
	"greedy80211/internal/core"
	"greedy80211/internal/profileflags"
	"greedy80211/internal/report"
	"greedy80211/internal/runner"
	"greedy80211/internal/stats"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func usage() {
	fmt.Fprintln(os.Stderr, `campaign: durable experiment campaigns

subcommands:
  run     compute a campaign's units into the store (resumable, shardable)
  status  show per-unit standing of a spec against a store (-json for machines)
  gc      delete store entries a spec no longer references
  verify  check every store entry's checksums and decodability
  submit  register a spec with a campaignd server and print its id
  worker  pull unit leases from a campaignd server and compute them

run "campaign <subcommand> -h" for flags`)
}

func run(args []string) int {
	if len(args) == 0 {
		usage()
		return 2
	}
	switch args[0] {
	case "run":
		return cmdRun(args[1:])
	case "status":
		return cmdStatus(args[1:])
	case "gc":
		return cmdGC(args[1:])
	case "verify":
		return cmdVerify(args[1:])
	case "submit":
		return cmdSubmit(args[1:])
	case "worker":
		return cmdWorker(args[1:])
	case "-h", "-help", "--help", "help":
		usage()
		return 0
	case "-version", "--version", "version":
		fmt.Printf("campaign %s\n", core.ModuleFingerprint())
		return 0
	default:
		fmt.Fprintf(os.Stderr, "campaign: unknown subcommand %q\n", args[0])
		usage()
		return 2
	}
}

// specFlags registers the flags that name or build a spec and returns a
// loader to call after parsing.
func specFlags(fs *flag.FlagSet) func() (*campaign.Spec, error) {
	var (
		specPath  = fs.String("spec", "", "campaign spec file (JSON); overrides the inline flags below")
		artifacts = fs.String("artifacts", "", "comma-separated artifact ids, or \"all\"")
		seeds     = fs.Int("seeds", 0, "seeded repetitions per data point (default 5)")
		baseSeed  = fs.Int64("seed", 0, "base seed")
		baseSeeds = fs.String("base-seeds", "", "comma-separated base-seed set; each seed is a distinct unit per artifact")
		duration  = fs.Duration("duration", 0, "simulated time per run (default 5s)")
		quick     = fs.Bool("quick", false, "1 seed, 2s runs, trimmed sweeps")
	)
	return func() (*campaign.Spec, error) {
		if *specPath != "" {
			return campaign.LoadSpec(*specPath)
		}
		if *artifacts == "" {
			return nil, fmt.Errorf("-spec <file> or -artifacts <ids> required")
		}
		spec := &campaign.Spec{
			Config: campaign.SpecConfig{
				Seeds:    *seeds,
				BaseSeed: *baseSeed,
				Quick:    *quick,
			},
		}
		if *duration != 0 {
			spec.Config.Duration = duration.String()
		}
		for _, id := range strings.Split(*artifacts, ",") {
			if id = strings.TrimSpace(id); id != "" {
				spec.Artifacts = append(spec.Artifacts, id)
			}
		}
		if *baseSeeds != "" {
			for _, s := range strings.Split(*baseSeeds, ",") {
				var v int64
				if _, err := fmt.Sscanf(strings.TrimSpace(s), "%d", &v); err != nil {
					return nil, fmt.Errorf("bad -base-seeds entry %q", s)
				}
				spec.BaseSeeds = append(spec.BaseSeeds, v)
			}
		}
		return spec, nil
	}
}

// openStore opens the -store directory, reporting the subcommand name in
// errors.
func openStore(sub, dir string) (*campaign.Store, bool) {
	st, err := campaign.OpenStore(dir)
	if err != nil {
		fmt.Fprintf(os.Stderr, "campaign %s: %v\n", sub, err)
		return nil, false
	}
	return st, true
}

// drainContext cancels the returned context on SIGINT/SIGTERM, printing
// which signal arrived and that in-flight units are draining. A second
// signal force-quits immediately — sometimes the operator really means
// it.
func drainContext(what string) (context.Context, context.CancelFunc) {
	ctx, cancel := context.WithCancel(context.Background())
	sigc := make(chan os.Signal, 2)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	go func() {
		sig := <-sigc
		fmt.Fprintf(os.Stderr, "campaign: received %v; %s (signal again to force-quit)\n", sig, what)
		cancel()
		<-sigc
		fmt.Fprintln(os.Stderr, "campaign: second signal; exiting now")
		os.Exit(130)
	}()
	return ctx, func() { signal.Stop(sigc); cancel() }
}

func cmdRun(args []string) int {
	fs := flag.NewFlagSet("campaign run", flag.ContinueOnError)
	loadSpec := specFlags(fs)
	var (
		storeDir = fs.String("store", "", "result store directory (required)")
		outDir   = fs.String("out", "", "assemble per-artifact results and metrics sidecar into this directory")
		shard    = fs.String("shard", "", "compute only work-list slice i/n (e.g. 0/2); all shards share -store")
		screen   = fs.Bool("screen", false,
			"model-screening pass: skip recomputing units whose previous-module result still agrees with the analytic model on every model-banded check (journaled as \"screened\", never adopted into the store)")
		parallel = fs.Int("parallel", runtime.GOMAXPROCS(0), "worker-pool size")
		prof     = profileflags.Register(fs)
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *storeDir == "" {
		fmt.Fprintln(os.Stderr, "campaign run: -store required")
		return 2
	}
	spec, err := loadSpec()
	if err != nil {
		fmt.Fprintf(os.Stderr, "campaign run: %v\n", err)
		return 2
	}
	opt := campaign.Options{StoreDir: *storeDir, OutDir: *outDir, Log: os.Stdout}
	if *screen {
		sets, err := report.LoadEmbedded()
		if err != nil {
			fmt.Fprintf(os.Stderr, "campaign run: loading refdata for -screen: %v\n", err)
			return 1
		}
		opt.Screen = report.ModelScreen(sets)
	}
	if *shard != "" {
		if _, err := fmt.Sscanf(*shard, "%d/%d", &opt.Shard, &opt.Shards); err != nil ||
			opt.Shards < 1 || opt.Shard < 0 || opt.Shard >= opt.Shards {
			fmt.Fprintf(os.Stderr, "campaign run: bad -shard %q (want i/n with 0 <= i < n)\n", *shard)
			return 2
		}
	}
	runner.SetLimit(*parallel)
	stopProf, err := prof.Start()
	if err != nil {
		fmt.Fprintf(os.Stderr, "campaign run: %v\n", err)
		return 1
	}
	defer stopProf()

	ctx, stop := drainContext("finishing in-flight units, then committing and stopping")
	defer stop()
	rep, err := campaign.Run(ctx, spec, opt)
	if errors.Is(err, context.Canceled) {
		fmt.Fprintf(os.Stderr, "campaign run: interrupted after %d/%d units; re-run the same command to resume\n",
			rep.CacheHits+rep.Computed, rep.InShard)
		return 1
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "campaign run: %v\n", err)
		return 1
	}
	fmt.Printf("campaign: %d units: %d cached, %d computed", rep.InShard, rep.CacheHits, rep.Computed)
	if rep.Screened > 0 {
		fmt.Printf(", %d screened", rep.Screened)
	}
	if len(rep.Failures) > 0 {
		fmt.Printf(", %d FAILED", len(rep.Failures))
	}
	fmt.Println()
	for _, f := range rep.Failures {
		fmt.Fprintf(os.Stderr, "campaign run: %s: %v\n", f.Unit.Name(), f.Err)
	}
	if len(rep.Failures) > 0 {
		return 1
	}
	return 0
}

func cmdStatus(args []string) int {
	fs := flag.NewFlagSet("campaign status", flag.ContinueOnError)
	loadSpec := specFlags(fs)
	var (
		storeDir = fs.String("store", "", "result store directory (required)")
		asJSON   = fs.Bool("json", false, "emit the status document as JSON (the same codec campaignd serves)")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *storeDir == "" {
		fmt.Fprintln(os.Stderr, "campaign status: -store required")
		return 2
	}
	spec, err := loadSpec()
	if err != nil {
		fmt.Fprintf(os.Stderr, "campaign status: %v\n", err)
		return 2
	}
	store, ok := openStore("status", *storeDir)
	if !ok {
		return 1
	}
	sts, err := campaign.Status(spec, store)
	if err != nil {
		fmt.Fprintf(os.Stderr, "campaign status: %v\n", err)
		return 1
	}
	doc := campaign.NewStatusDoc(sts)
	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(doc); err != nil {
			fmt.Fprintf(os.Stderr, "campaign status: %v\n", err)
			return 1
		}
		return 0
	}
	t := stats.Table{Header: []string{"unit", "key", "state"}}
	for _, u := range doc.Units {
		t.AddRow(u.Name, u.Key[:12], string(u.State))
	}
	fmt.Print(t.String())
	fmt.Printf("%d/%d units done", doc.Done, doc.Total)
	if doc.Screened > 0 {
		fmt.Printf(" (%d screened)", doc.Screened)
	}
	fmt.Println()
	return 0
}

func cmdGC(args []string) int {
	fs := flag.NewFlagSet("campaign gc", flag.ContinueOnError)
	loadSpec := specFlags(fs)
	var (
		storeDir = fs.String("store", "", "result store directory (required)")
		dryRun   = fs.Bool("dry-run", false, "report what would be deleted without deleting")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *storeDir == "" {
		fmt.Fprintln(os.Stderr, "campaign gc: -store required")
		return 2
	}
	spec, err := loadSpec()
	if err != nil {
		fmt.Fprintf(os.Stderr, "campaign gc: %v\n", err)
		return 2
	}
	store, ok := openStore("gc", *storeDir)
	if !ok {
		return 1
	}
	rep, err := campaign.GC(spec, store, *dryRun)
	if err != nil {
		fmt.Fprintf(os.Stderr, "campaign gc: %v\n", err)
		return 1
	}
	verb := "deleted"
	if *dryRun {
		verb = "would delete"
	}
	fmt.Printf("campaign gc: kept %d entries, %s %d\n", rep.Kept, verb, rep.Deleted)
	return 0
}

func cmdVerify(args []string) int {
	fs := flag.NewFlagSet("campaign verify", flag.ContinueOnError)
	storeDir := fs.String("store", "", "result store directory (required)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *storeDir == "" {
		fmt.Fprintln(os.Stderr, "campaign verify: -store required")
		return 2
	}
	store, ok := openStore("verify", *storeDir)
	if !ok {
		return 1
	}
	bad, err := campaign.Verify(store)
	if err != nil {
		fmt.Fprintf(os.Stderr, "campaign verify: %v\n", err)
		return 1
	}
	for _, e := range bad {
		fmt.Fprintf(os.Stderr, "campaign verify: %v\n", e)
	}
	if len(bad) > 0 {
		fmt.Fprintf(os.Stderr, "campaign verify: %d corrupt entries\n", len(bad))
		return 1
	}
	fmt.Println("campaign verify: store is sound")
	return 0
}

func cmdSubmit(args []string) int {
	fs := flag.NewFlagSet("campaign submit", flag.ContinueOnError)
	loadSpec := specFlags(fs)
	server := fs.String("server", "", "campaignd base URL, e.g. http://127.0.0.1:8080 (required)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *server == "" {
		fmt.Fprintln(os.Stderr, "campaign submit: -server required")
		return 2
	}
	spec, err := loadSpec()
	if err != nil {
		fmt.Fprintf(os.Stderr, "campaign submit: %v\n", err)
		return 2
	}
	ctx, stop := drainContext("abandoning submission")
	defer stop()
	c := &client.Client{BaseURL: *server}
	doc, err := c.Submit(ctx, spec)
	if err != nil {
		fmt.Fprintf(os.Stderr, "campaign submit: %v\n", err)
		return 1
	}
	fmt.Printf("campaign %s: %d units (%d done, %d pending) across %s\n",
		doc.ID, doc.Status.Total, doc.Status.Done,
		doc.Status.Total-doc.Status.Done, strings.Join(doc.Artifacts, ","))
	fmt.Println(doc.ID)
	return 0
}

func cmdWorker(args []string) int {
	fs := flag.NewFlagSet("campaign worker", flag.ContinueOnError)
	var (
		server     = fs.String("server", "", "campaignd base URL (required)")
		campaignID = fs.String("campaign", "", "campaign id to work on (required; printed by submit)")
		name       = fs.String("name", "", "worker name for lease attribution (default host:pid)")
		parallel   = fs.Int("parallel", runtime.GOMAXPROCS(0), "worker-pool size for each unit's seed runs")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *server == "" || *campaignID == "" {
		fmt.Fprintln(os.Stderr, "campaign worker: -server and -campaign required")
		return 2
	}
	runner.SetLimit(*parallel)
	ctx, stop := drainContext("abandoning the in-flight unit (its lease will expire and be re-issued)")
	defer stop()
	c := &client.Client{
		BaseURL: *server,
		Logf: func(format string, args ...any) {
			fmt.Printf(format+"\n", args...)
		},
	}
	wstats, err := c.Work(ctx, *campaignID, *name)
	if errors.Is(err, context.Canceled) {
		fmt.Fprintf(os.Stderr, "campaign worker: interrupted after %d unit(s) committed\n", wstats.Computed)
		return 1
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "campaign worker: %v\n", err)
		return 1
	}
	fmt.Printf("campaign worker: done: %d computed, %d failed, %d wait rounds\n",
		wstats.Computed, wstats.Failed, wstats.Waited)
	return 0
}
