// Command campaign drives durable, resumable, shardable experiment
// campaigns over the content-addressed result store.
//
// Usage:
//
//	campaign run -spec spec.json -store .campaign -out results/
//	campaign run -artifacts fig1,fig4 -seeds 5 -duration 5s -store .campaign
//	campaign run -spec spec.json -store /shared/store -shard 0/2
//	campaign run -spec spec.json -store .campaign -screen
//	campaign status -spec spec.json -store .campaign [-json]
//	campaign status -server http://host:8080 -follow
//	campaign gc -spec spec.json -store .campaign
//	campaign verify -store .campaign
//	campaign submit -spec spec.json -server http://host:8080
//	campaign worker -server http://host:8080 -campaign <id>
//	campaign spans -store .campaign -out spans.json
//
// A campaign expands into a deterministic work-list of units (artifact ×
// config × base seed). Units already in the store are skipped, so
// re-running after an interrupt (Ctrl-C, crash, power loss) resumes
// where it stopped, and a warm rerun does zero simulation work. With
// -shard i/n independent processes compute disjoint slices of the
// work-list against a shared store; once the store is complete, any run
// with -out assembles results byte-identically to a single sequential
// cmd/experiments invocation.
//
// submit and worker speak to a campaignd server instead of a local
// store: submit registers the spec and prints the campaign id, worker
// pulls per-unit leases over HTTP, heartbeats while computing, and
// uploads results until the campaign is done.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"syscall"
	"time"

	"greedy80211/internal/campaign"
	"greedy80211/internal/campaignd"
	"greedy80211/internal/campaignd/client"
	"greedy80211/internal/core"
	"greedy80211/internal/obs"
	"greedy80211/internal/profileflags"
	"greedy80211/internal/report"
	"greedy80211/internal/runner"
	"greedy80211/internal/stats"
	"greedy80211/internal/trace"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func usage() {
	fmt.Fprintln(os.Stderr, `campaign: durable experiment campaigns

subcommands:
  run     compute a campaign's units into the store (resumable, shardable)
  status  show per-unit standing of a spec against a store (-json for machines),
          or live progress from a campaignd server (-server, -follow)
  gc      delete store entries a spec no longer references
  verify  check every store entry's checksums and decodability
  submit  register a spec with a campaignd server and print its id
  worker  pull unit leases from a campaignd server and compute them
  spans   render the store's progress-span log as Chrome trace JSON (Perfetto)

run "campaign <subcommand> -h" for flags`)
}

func run(args []string) int {
	if len(args) == 0 {
		usage()
		return 2
	}
	switch args[0] {
	case "run":
		return cmdRun(args[1:])
	case "status":
		return cmdStatus(args[1:])
	case "gc":
		return cmdGC(args[1:])
	case "verify":
		return cmdVerify(args[1:])
	case "submit":
		return cmdSubmit(args[1:])
	case "worker":
		return cmdWorker(args[1:])
	case "spans":
		return cmdSpans(args[1:])
	case "-h", "-help", "--help", "help":
		usage()
		return 0
	case "-version", "--version", "version":
		fmt.Printf("campaign %s\n", core.ModuleFingerprint())
		return 0
	default:
		fmt.Fprintf(os.Stderr, "campaign: unknown subcommand %q\n", args[0])
		usage()
		return 2
	}
}

// specFlags registers the flags that name or build a spec and returns a
// loader to call after parsing.
func specFlags(fs *flag.FlagSet) func() (*campaign.Spec, error) {
	var (
		specPath  = fs.String("spec", "", "campaign spec file (JSON); overrides the inline flags below")
		artifacts = fs.String("artifacts", "", "comma-separated artifact ids, or \"all\"")
		seeds     = fs.Int("seeds", 0, "seeded repetitions per data point (default 5)")
		baseSeed  = fs.Int64("seed", 0, "base seed")
		baseSeeds = fs.String("base-seeds", "", "comma-separated base-seed set; each seed is a distinct unit per artifact")
		duration  = fs.Duration("duration", 0, "simulated time per run (default 5s)")
		quick     = fs.Bool("quick", false, "1 seed, 2s runs, trimmed sweeps")
	)
	return func() (*campaign.Spec, error) {
		if *specPath != "" {
			return campaign.LoadSpec(*specPath)
		}
		if *artifacts == "" {
			return nil, fmt.Errorf("-spec <file> or -artifacts <ids> required")
		}
		spec := &campaign.Spec{
			Config: campaign.SpecConfig{
				Seeds:    *seeds,
				BaseSeed: *baseSeed,
				Quick:    *quick,
			},
		}
		if *duration != 0 {
			spec.Config.Duration = duration.String()
		}
		for _, id := range strings.Split(*artifacts, ",") {
			if id = strings.TrimSpace(id); id != "" {
				spec.Artifacts = append(spec.Artifacts, id)
			}
		}
		if *baseSeeds != "" {
			for _, s := range strings.Split(*baseSeeds, ",") {
				var v int64
				if _, err := fmt.Sscanf(strings.TrimSpace(s), "%d", &v); err != nil {
					return nil, fmt.Errorf("bad -base-seeds entry %q", s)
				}
				spec.BaseSeeds = append(spec.BaseSeeds, v)
			}
		}
		return spec, nil
	}
}

// openStore opens the -store directory, reporting the subcommand name in
// errors.
func openStore(sub, dir string) (*campaign.Store, bool) {
	st, err := campaign.OpenStore(dir)
	if err != nil {
		fmt.Fprintf(os.Stderr, "campaign %s: %v\n", sub, err)
		return nil, false
	}
	return st, true
}

// drainContext cancels the returned context on SIGINT/SIGTERM, printing
// which signal arrived and that in-flight units are draining. A second
// signal force-quits immediately — sometimes the operator really means
// it.
func drainContext(what string) (context.Context, context.CancelFunc) {
	ctx, cancel := context.WithCancel(context.Background())
	sigc := make(chan os.Signal, 2)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	go func() {
		sig := <-sigc
		fmt.Fprintf(os.Stderr, "campaign: received %v; %s (signal again to force-quit)\n", sig, what)
		cancel()
		<-sigc
		fmt.Fprintln(os.Stderr, "campaign: second signal; exiting now")
		os.Exit(130)
	}()
	return ctx, func() { signal.Stop(sigc); cancel() }
}

func cmdRun(args []string) int {
	fs := flag.NewFlagSet("campaign run", flag.ContinueOnError)
	loadSpec := specFlags(fs)
	var (
		storeDir = fs.String("store", "", "result store directory (required)")
		outDir   = fs.String("out", "", "assemble per-artifact results and metrics sidecar into this directory")
		shard    = fs.String("shard", "", "compute only work-list slice i/n (e.g. 0/2); all shards share -store")
		screen   = fs.Bool("screen", false,
			"model-screening pass: skip recomputing units whose previous-module result still agrees with the analytic model on every model-banded check (journaled as \"screened\", never adopted into the store)")
		parallel = fs.Int("parallel", runtime.GOMAXPROCS(0), "worker-pool size")
		prof     = profileflags.Register(fs)
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *storeDir == "" {
		fmt.Fprintln(os.Stderr, "campaign run: -store required")
		return 2
	}
	spec, err := loadSpec()
	if err != nil {
		fmt.Fprintf(os.Stderr, "campaign run: %v\n", err)
		return 2
	}
	opt := campaign.Options{StoreDir: *storeDir, OutDir: *outDir, Log: os.Stdout}
	if *screen {
		sets, err := report.LoadEmbedded()
		if err != nil {
			fmt.Fprintf(os.Stderr, "campaign run: loading refdata for -screen: %v\n", err)
			return 1
		}
		opt.Screen = report.ModelScreen(sets)
	}
	if *shard != "" {
		if _, err := fmt.Sscanf(*shard, "%d/%d", &opt.Shard, &opt.Shards); err != nil ||
			opt.Shards < 1 || opt.Shard < 0 || opt.Shard >= opt.Shards {
			fmt.Fprintf(os.Stderr, "campaign run: bad -shard %q (want i/n with 0 <= i < n)\n", *shard)
			return 2
		}
	}
	runner.SetLimit(*parallel)
	stopProf, err := prof.Start()
	if err != nil {
		fmt.Fprintf(os.Stderr, "campaign run: %v\n", err)
		return 1
	}
	defer stopProf()

	ctx, stop := drainContext("finishing in-flight units, then committing and stopping")
	defer stop()
	rep, err := campaign.Run(ctx, spec, opt)
	if errors.Is(err, context.Canceled) {
		fmt.Fprintf(os.Stderr, "campaign run: interrupted after %d/%d units; re-run the same command to resume\n",
			rep.CacheHits+rep.Computed, rep.InShard)
		return 1
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "campaign run: %v\n", err)
		return 1
	}
	fmt.Printf("campaign: %d units: %d cached, %d computed", rep.InShard, rep.CacheHits, rep.Computed)
	if rep.Screened > 0 {
		fmt.Printf(", %d screened", rep.Screened)
	}
	if len(rep.Failures) > 0 {
		fmt.Printf(", %d FAILED", len(rep.Failures))
	}
	fmt.Println()
	for _, f := range rep.Failures {
		fmt.Fprintf(os.Stderr, "campaign run: %s: %v\n", f.Unit.Name(), f.Err)
	}
	if len(rep.Failures) > 0 {
		return 1
	}
	return 0
}

func cmdStatus(args []string) int {
	fs := flag.NewFlagSet("campaign status", flag.ContinueOnError)
	loadSpec := specFlags(fs)
	var (
		storeDir = fs.String("store", "", "result store directory (required unless -server)")
		asJSON   = fs.Bool("json", false, "emit the status document as JSON (the same codec campaignd serves)")
		server   = fs.String("server", "", "campaignd base URL; show the server's live progress view instead of scanning a local store")
		follow   = fs.Bool("follow", false, "with -server: keep polling until every registered campaign is complete")
		every    = fs.Duration("every", 2*time.Second, "poll interval for -follow")
		logCfg   = obs.RegisterLogFlags(fs)
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *server != "" {
		logger, err := logCfg.Logger(os.Stderr)
		if err != nil {
			fmt.Fprintf(os.Stderr, "campaign status: %v\n", err)
			return 2
		}
		return statusFromServer(*server, *follow, *every, *asJSON, logger)
	}
	if *storeDir == "" {
		fmt.Fprintln(os.Stderr, "campaign status: -store or -server required")
		return 2
	}
	spec, err := loadSpec()
	if err != nil {
		fmt.Fprintf(os.Stderr, "campaign status: %v\n", err)
		return 2
	}
	store, ok := openStore("status", *storeDir)
	if !ok {
		return 1
	}
	sts, err := campaign.Status(spec, store)
	if err != nil {
		fmt.Fprintf(os.Stderr, "campaign status: %v\n", err)
		return 1
	}
	doc := campaign.NewStatusDoc(sts)
	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(doc); err != nil {
			fmt.Fprintf(os.Stderr, "campaign status: %v\n", err)
			return 1
		}
		return 0
	}
	t := stats.Table{Header: []string{"unit", "key", "state"}}
	for _, u := range doc.Units {
		t.AddRow(u.Name, u.Key[:12], string(u.State))
	}
	fmt.Print(t.String())
	fmt.Printf("%d/%d units done", doc.Done, doc.Total)
	if doc.Screened > 0 {
		fmt.Printf(" (%d screened)", doc.Screened)
	}
	fmt.Println()
	return 0
}

// statusFromServer renders campaignd's /v1/progress view: one shot by
// default, or a poll loop with -follow that exits 0 once the server
// reports every registered campaign complete.
func statusFromServer(server string, follow bool, every time.Duration, asJSON bool, logger *slog.Logger) int {
	ctx, stop := drainContext("stopping the status watch")
	defer stop()
	c := &client.Client{BaseURL: server, Logger: logger}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	for {
		doc, err := c.Progress(ctx)
		if err != nil {
			fmt.Fprintf(os.Stderr, "campaign status: %v\n", err)
			return 1
		}
		if asJSON {
			if err := enc.Encode(doc); err != nil {
				fmt.Fprintf(os.Stderr, "campaign status: %v\n", err)
				return 1
			}
		} else {
			renderProgress(os.Stdout, doc)
		}
		if !follow {
			return 0
		}
		if doc.Done {
			fmt.Println("campaign status: all campaigns complete")
			return 0
		}
		select {
		case <-ctx.Done():
			return 1
		case <-time.After(every):
		}
	}
}

// renderProgress prints one human-readable frame of the server's
// progress document: per-campaign completion with ETA, per-artifact
// unit-time estimates, and the worker fleet table.
func renderProgress(w io.Writer, doc *campaignd.ProgressDoc) {
	fmt.Fprintf(w, "server up %.0fs", doc.UptimeSeconds)
	if doc.Draining {
		fmt.Fprint(w, " (draining)")
	}
	fmt.Fprintln(w)
	if len(doc.Campaigns) == 0 {
		fmt.Fprintln(w, "no campaigns registered")
		return
	}
	for _, cp := range doc.Campaigns {
		fmt.Fprintf(w, "campaign %s: %d/%d done (%.0f%%)", cp.ID, cp.Done, cp.Total, cp.DonePct)
		if cp.Leased > 0 {
			fmt.Fprintf(w, ", %d leased", cp.Leased)
		}
		if cp.Failed > 0 {
			fmt.Fprintf(w, ", %d failed", cp.Failed)
		}
		if cp.Screened > 0 {
			fmt.Fprintf(w, ", %d screened", cp.Screened)
		}
		if cp.ETASeconds > 0 {
			fmt.Fprintf(w, ", ETA %s", fmtETA(cp.ETASeconds))
		}
		fmt.Fprintln(w)
		t := stats.Table{Header: []string{"artifact", "done", "total", "unit_s", "eta"}}
		for _, a := range cp.Artifacts {
			unitS, eta := "-", "-"
			if a.UnitSeconds > 0 {
				unitS = fmt.Sprintf("%.1f", a.UnitSeconds)
			}
			if a.ETASeconds > 0 {
				eta = fmtETA(a.ETASeconds)
			}
			t.AddRow(a.Artifact, fmt.Sprint(a.Done), fmt.Sprint(a.Total), unitS, eta)
		}
		fmt.Fprint(w, t.String())
	}
	if len(doc.Workers) > 0 {
		t := stats.Table{Header: []string{"worker", "active", "completed", "failed", "seen_ago_s"}}
		for _, wk := range doc.Workers {
			t.AddRow(wk.Worker, fmt.Sprint(wk.ActiveLeases), fmt.Sprint(wk.Completed),
				fmt.Sprint(wk.Failed), fmt.Sprintf("%.0f", wk.LastSeenAgoS))
		}
		fmt.Fprint(w, t.String())
	}
}

// fmtETA renders seconds as a compact human duration (90 -> "1m30s").
func fmtETA(s float64) string {
	return time.Duration(s * float64(time.Second)).Round(time.Second).String()
}

func cmdGC(args []string) int {
	fs := flag.NewFlagSet("campaign gc", flag.ContinueOnError)
	loadSpec := specFlags(fs)
	var (
		storeDir = fs.String("store", "", "result store directory (required)")
		dryRun   = fs.Bool("dry-run", false, "report what would be deleted without deleting")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *storeDir == "" {
		fmt.Fprintln(os.Stderr, "campaign gc: -store required")
		return 2
	}
	spec, err := loadSpec()
	if err != nil {
		fmt.Fprintf(os.Stderr, "campaign gc: %v\n", err)
		return 2
	}
	store, ok := openStore("gc", *storeDir)
	if !ok {
		return 1
	}
	rep, err := campaign.GC(spec, store, *dryRun)
	if err != nil {
		fmt.Fprintf(os.Stderr, "campaign gc: %v\n", err)
		return 1
	}
	verb := "deleted"
	if *dryRun {
		verb = "would delete"
	}
	fmt.Printf("campaign gc: kept %d entries, %s %d\n", rep.Kept, verb, rep.Deleted)
	return 0
}

func cmdVerify(args []string) int {
	fs := flag.NewFlagSet("campaign verify", flag.ContinueOnError)
	storeDir := fs.String("store", "", "result store directory (required)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *storeDir == "" {
		fmt.Fprintln(os.Stderr, "campaign verify: -store required")
		return 2
	}
	store, ok := openStore("verify", *storeDir)
	if !ok {
		return 1
	}
	bad, err := campaign.Verify(store)
	if err != nil {
		fmt.Fprintf(os.Stderr, "campaign verify: %v\n", err)
		return 1
	}
	for _, e := range bad {
		fmt.Fprintf(os.Stderr, "campaign verify: %v\n", e)
	}
	if len(bad) > 0 {
		fmt.Fprintf(os.Stderr, "campaign verify: %d corrupt entries\n", len(bad))
		return 1
	}
	fmt.Println("campaign verify: store is sound")
	return 0
}

func cmdSubmit(args []string) int {
	fs := flag.NewFlagSet("campaign submit", flag.ContinueOnError)
	loadSpec := specFlags(fs)
	server := fs.String("server", "", "campaignd base URL, e.g. http://127.0.0.1:8080 (required)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *server == "" {
		fmt.Fprintln(os.Stderr, "campaign submit: -server required")
		return 2
	}
	spec, err := loadSpec()
	if err != nil {
		fmt.Fprintf(os.Stderr, "campaign submit: %v\n", err)
		return 2
	}
	ctx, stop := drainContext("abandoning submission")
	defer stop()
	c := &client.Client{BaseURL: *server}
	doc, err := c.Submit(ctx, spec)
	if err != nil {
		fmt.Fprintf(os.Stderr, "campaign submit: %v\n", err)
		return 1
	}
	fmt.Printf("campaign %s: %d units (%d done, %d pending) across %s\n",
		doc.ID, doc.Status.Total, doc.Status.Done,
		doc.Status.Total-doc.Status.Done, strings.Join(doc.Artifacts, ","))
	fmt.Println(doc.ID)
	return 0
}

func cmdWorker(args []string) int {
	fs := flag.NewFlagSet("campaign worker", flag.ContinueOnError)
	var (
		server     = fs.String("server", "", "campaignd base URL (required)")
		campaignID = fs.String("campaign", "", "campaign id to work on (required; printed by submit)")
		name       = fs.String("name", "", "worker name for lease attribution (default host:pid)")
		parallel   = fs.Int("parallel", runtime.GOMAXPROCS(0), "worker-pool size for each unit's seed runs")
		logCfg     = obs.RegisterLogFlags(fs)
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *server == "" || *campaignID == "" {
		fmt.Fprintln(os.Stderr, "campaign worker: -server and -campaign required")
		return 2
	}
	logger, err := logCfg.Logger(os.Stderr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "campaign worker: %v\n", err)
		return 2
	}
	runner.SetLimit(*parallel)
	ctx, stop := drainContext("abandoning the in-flight unit (its lease will expire and be re-issued)")
	defer stop()
	// One request id scopes the whole worker run: every HTTP call carries
	// it, so the server's access log groups this worker's traffic under a
	// single greppable id.
	ctx = obs.WithRequestID(ctx, obs.NewID())
	c := &client.Client{BaseURL: *server, Logger: logger}
	logger.InfoContext(ctx, "worker starting", "server", *server, "campaign", *campaignID)
	wstats, err := c.Work(ctx, *campaignID, *name)
	if errors.Is(err, context.Canceled) {
		fmt.Fprintf(os.Stderr, "campaign worker: interrupted after %d unit(s) committed\n", wstats.Computed)
		return 1
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "campaign worker: %v\n", err)
		return 1
	}
	fmt.Printf("campaign worker: done: %d computed, %d failed, %d wait rounds\n",
		wstats.Computed, wstats.Failed, wstats.Waited)
	return 0
}

func cmdSpans(args []string) int {
	fs := flag.NewFlagSet("campaign spans", flag.ContinueOnError)
	var (
		storeDir = fs.String("store", "", "result store directory (required)")
		outPath  = fs.String("out", "", "write Chrome trace JSON here (default stdout)")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *storeDir == "" {
		fmt.Fprintln(os.Stderr, "campaign spans: -store required")
		return 2
	}
	store, ok := openStore("spans", *storeDir)
	if !ok {
		return 1
	}
	spans, err := campaign.ReadSpans(store.SpanPath())
	if err != nil {
		fmt.Fprintf(os.Stderr, "campaign spans: %v\n", err)
		return 1
	}
	if len(spans) == 0 {
		fmt.Fprintln(os.Stderr, "campaign spans: no spans recorded in this store")
		return 1
	}
	// Timestamps are wall-clock nanoseconds; Chrome trace wants
	// microseconds from an arbitrary epoch, so rebase on the earliest
	// span to keep the numbers small and the timeline starting at zero.
	epoch := spans[0].StartUnixNs
	for _, s := range spans {
		if s.StartUnixNs < epoch {
			epoch = s.StartUnixNs
		}
	}
	tr := make([]trace.Span, 0, len(spans))
	for _, s := range spans {
		track := s.Worker
		if track == "" {
			track = "engine"
		}
		sargs := map[string]any{"unit": s.Unit}
		if len(s.Key) >= 12 {
			sargs["key"] = s.Key[:12]
		}
		if s.Note != "" {
			sargs["note"] = s.Note
		}
		tr = append(tr, trace.Span{
			Track:   track,
			Name:    s.Phase + " " + s.Unit,
			Cat:     s.Phase,
			StartUs: float64(s.StartUnixNs-epoch) / 1e3,
			DurUs:   float64(s.EndUnixNs-s.StartUnixNs) / 1e3,
			Args:    sargs,
		})
	}
	var w io.Writer = os.Stdout
	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "campaign spans: %v\n", err)
			return 1
		}
		defer f.Close()
		w = f
	}
	if err := trace.WriteChromeSpans(w, "campaign "+*storeDir, tr); err != nil {
		fmt.Fprintf(os.Stderr, "campaign spans: %v\n", err)
		return 1
	}
	if *outPath != "" {
		fmt.Printf("campaign spans: wrote %d spans to %s (load in Perfetto or chrome://tracing)\n", len(tr), *outPath)
	}
	return 0
}
