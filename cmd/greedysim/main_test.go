package main

import "testing"

func TestParseMisbehavior(t *testing.T) {
	tests := []struct {
		in      string
		wantErr bool
	}{
		{"none", false}, {"", false}, {"nav", false}, {"nav-inflation", false},
		{"spoof", false}, {"ack-spoofing", false}, {"fake", false},
		{"fake-acks", false}, {"bogus", true},
	}
	for _, tt := range tests {
		if _, err := parseMisbehavior(tt.in); (err != nil) != tt.wantErr {
			t.Errorf("parseMisbehavior(%q) err = %v, wantErr %v", tt.in, err, tt.wantErr)
		}
	}
}

func TestParseFrames(t *testing.T) {
	for _, ok := range []string{"cts", "", "ack", "cts+ack", "rts+cts", "all"} {
		if _, err := parseFrames(ok); err != nil {
			t.Errorf("parseFrames(%q) = %v", ok, err)
		}
	}
	if _, err := parseFrames("datagram"); err == nil {
		t.Error("bad frame set accepted")
	}
}

func TestRunExitCodes(t *testing.T) {
	tests := []struct {
		name string
		args []string
		want int
	}{
		{"bad flag", []string{"-nope"}, 2},
		{"bad misbehavior", []string{"-misbehavior", "x"}, 2},
		{"bad transport", []string{"-transport", "x"}, 2},
		{"bad band", []string{"-band", "x"}, 2},
		{"bad frames", []string{"-frames", "x"}, 2},
		{"invalid config", []string{"-misbehavior", "nav", "-greedy", "9", "-pairs", "2",
			"-runs", "1", "-duration", "1s"}, 1},
		{"baseline run", []string{"-runs", "1", "-duration", "1s"}, 0},
		{"nav with grc and trace", []string{"-misbehavior", "nav", "-nav", "5ms",
			"-grc", "-trace", t.TempDir(), "-runs", "1", "-duration", "1s"}, 0},
		{"spoof tcp", []string{"-misbehavior", "spoof", "-transport", "tcp",
			"-ber", "2e-4", "-runs", "1", "-duration", "1s"}, 0},
		{"fake hidden", []string{"-misbehavior", "fake", "-hidden",
			"-runs", "1", "-duration", "1s"}, 0},
		{"shared ap 11a", []string{"-shared-ap", "-band", "a", "-pairs", "3",
			"-runs", "1", "-duration", "1s"}, 0},
		{"no rtscts", []string{"-no-rtscts", "-runs", "1", "-duration", "1s"}, 0},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := run(tt.args); got != tt.want {
				t.Errorf("run(%v) = %d, want %d", tt.args, got, tt.want)
			}
		})
	}
}
