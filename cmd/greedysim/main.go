// Command greedysim runs one hotspot scenario with a chosen greedy
// receiver misbehavior and prints per-flow goodput.
//
// Examples:
//
//	greedysim -misbehavior nav -nav 10ms -transport udp
//	greedysim -misbehavior spoof -transport tcp -ber 2e-4 -grc
//	greedysim -misbehavior fake -hidden -gp 50
//	greedysim -pairs 8 -misbehavior nav -greedy 2 -nav 31ms
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"

	"greedy80211/internal/core"
	"greedy80211/internal/greedy"
	"greedy80211/internal/metrics"
	"greedy80211/internal/phys"
	"greedy80211/internal/profileflags"
	"greedy80211/internal/runner"
	"greedy80211/internal/scenario"
	"greedy80211/internal/sim"
	"greedy80211/internal/stats"
	"greedy80211/internal/trace"
	"greedy80211/internal/versionflag"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func parseMisbehavior(s string) (core.Misbehavior, error) {
	switch s {
	case "none", "":
		return core.MisbehaviorNone, nil
	case "nav", "nav-inflation":
		return core.MisbehaviorNAVInflation, nil
	case "spoof", "ack-spoofing":
		return core.MisbehaviorACKSpoofing, nil
	case "fake", "fake-acks":
		return core.MisbehaviorFakeACKs, nil
	default:
		return 0, fmt.Errorf("unknown misbehavior %q (none|nav|spoof|fake)", s)
	}
}

func parseFrames(s string) (greedy.FrameSet, error) {
	switch s {
	case "cts", "":
		return greedy.CTSOnly, nil
	case "ack":
		return greedy.ACKOnly, nil
	case "cts+ack":
		return greedy.CTSAndACK, nil
	case "rts+cts":
		return greedy.RTSAndCTS, nil
	case "all":
		return greedy.AllFrames, nil
	default:
		return greedy.FrameSet{}, fmt.Errorf("unknown frame set %q (cts|ack|cts+ack|rts+cts|all)", s)
	}
}

func run(args []string) int {
	fs := flag.NewFlagSet("greedysim", flag.ContinueOnError)
	var (
		misFlag   = fs.String("misbehavior", "none", "none | nav | spoof | fake")
		transport = fs.String("transport", "udp", "udp | tcp")
		band      = fs.String("band", "b", "802.11 band: b | a")
		pairs     = fs.Int("pairs", 2, "number of sender-receiver flows")
		greedyN   = fs.Int("greedy", 1, "number of greedy receivers")
		gp        = fs.Float64("gp", 100, "greedy percentage (0-100)")
		nav       = fs.Duration("nav", 0, "NAV inflation amount (misbehavior nav), e.g. 10ms")
		frames    = fs.String("frames", "cts+ack", "frames to inflate: cts | ack | cts+ack | rts+cts | all")
		ber       = fs.Float64("ber", 0, "channel bit error rate (Table III model)")
		dataFER   = fs.Float64("data-fer", 0, "fixed data-frame error rate")
		hidden    = fs.Bool("hidden", false, "hidden-terminal topology (fake-ACK study)")
		sharedAP  = fs.Bool("shared-ap", false, "all flows behind one access point")
		noRTS     = fs.Bool("no-rtscts", false, "disable RTS/CTS")
		grc       = fs.Bool("grc", false, "enable the GRC countermeasure at every station")
		duration  = fs.Duration("duration", 0, "simulated time per run (default 5s)")
		runs      = fs.Int("runs", 0, "seeded repetitions (default 5, median reported)")
		seed      = fs.Int64("seed", 1, "base seed")
		traceDir  = fs.String("trace", "",
			"attach a flight recorder to every run, write JSONL traces + ASCII timelines into this directory, and print channel airtime accounting")
		traceCap = fs.Int("trace-cap", 0, "flight-recorder ring capacity in events per run (default 4096)")
		parallel = fs.Int("parallel", runtime.GOMAXPROCS(0),
			"worker-pool size for seeded repetitions; 1 = sequential (output is identical either way)")
		metricsOut = fs.String("metrics", "", "write the per-station telemetry snapshot to this file (.csv for CSV, else JSONL)")
		version    = versionflag.Register(fs)
		prof       = profileflags.Register(fs)
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if versionflag.Handle(version, os.Stdout, "greedysim") {
		return 0
	}
	runner.SetLimit(*parallel)
	stopProf, err := prof.Start()
	if err != nil {
		fmt.Fprintf(os.Stderr, "greedysim: %v\n", err)
		return 1
	}
	defer stopProf()
	mis, err := parseMisbehavior(*misFlag)
	if err != nil {
		fmt.Fprintf(os.Stderr, "greedysim: %v\n", err)
		return 2
	}
	frameSet, err := parseFrames(*frames)
	if err != nil {
		fmt.Fprintf(os.Stderr, "greedysim: %v\n", err)
		return 2
	}
	cfg := core.Config{
		Seed:            *seed,
		Runs:            *runs,
		Duration:        sim.Time(duration.Nanoseconds()),
		Pairs:           *pairs,
		SharedAP:        *sharedAP,
		HiddenTerminals: *hidden,
		DisableRTSCTS:   *noRTS,
		Misbehavior:     mis,
		GreedyReceivers: *greedyN,
		GreedyPercent:   *gp,
		NAVInflation:    sim.Time(nav.Nanoseconds()),
		NAVFrames:       frameSet,
		BER:             *ber,
		DataFER:         *dataFER,
		EnableGRC:       *grc,
	}
	if mis == core.MisbehaviorNone {
		cfg.GreedyReceivers = 0
	}
	var coll *trace.Collector
	if *traceDir != "" {
		coll = trace.NewCollector(*traceCap)
		cfg.FlightRecorder = coll
	}
	switch *transport {
	case "udp":
		cfg.Transport = scenario.UDP
	case "tcp":
		cfg.Transport = scenario.TCP
	default:
		fmt.Fprintf(os.Stderr, "greedysim: unknown transport %q\n", *transport)
		return 2
	}
	switch *band {
	case "b":
		cfg.Band = phys.Band80211B
	case "a":
		cfg.Band = phys.Band80211A
	default:
		fmt.Fprintf(os.Stderr, "greedysim: unknown band %q\n", *band)
		return 2
	}
	res, err := core.Run(cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "greedysim: %v\n", err)
		return 1
	}
	t := stats.Table{
		Title:  fmt.Sprintf("misbehavior=%v transport=%s band=802.11%s grc=%v", mis, *transport, *band, *grc),
		Header: []string{"flow", "role", "goodput_mbps"},
	}
	for _, f := range res.Flows {
		role := "normal"
		if f.Greedy {
			role = "greedy"
		}
		t.AddRow(f.ID, role, f.GoodputMbps)
	}
	fmt.Print(t.String())
	if res.Goodput.GreedyMbps > 0 {
		fmt.Printf("greedy avg %.3f Mbps vs normal avg %.3f Mbps\n",
			res.Goodput.GreedyMbps, res.Goodput.NormalMbps)
	}
	if *grc {
		fmt.Printf("GRC interventions per run (median): %.0f NAV corrections, %.0f spoofed ACKs ignored\n",
			res.GRC.NAVCorrections, res.GRC.SpoofsIgnored)
	}
	if *metricsOut != "" {
		if err := metrics.WriteFile(*metricsOut, metrics.Labeled{Label: "greedysim", Snap: res.Metrics}); err != nil {
			fmt.Fprintf(os.Stderr, "greedysim: %v\n", err)
			return 1
		}
		fmt.Printf("telemetry written to %s\n", *metricsOut)
	}
	if coll != nil {
		paths, err := trace.ExportDir(*traceDir, "greedysim", coll.Recordings())
		if err != nil {
			fmt.Fprintf(os.Stderr, "greedysim: %v\n", err)
			return 1
		}
		effDur := cfg.Duration
		if effDur == 0 {
			effDur = 5 * sim.Second
		}
		if recs := coll.Recordings(); len(recs) > 0 {
			fmt.Printf("run 0 (seed %d) channel accounting:\n", recs[0].Seed)
			fmt.Print(recs[0].Recorder.Summary(effDur))
		}
		fmt.Printf("%d trace files written to %s\n", len(paths), *traceDir)
	}
	return 0
}
