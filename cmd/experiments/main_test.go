package main

import (
	"errors"
	"os"
	"path/filepath"
	"testing"

	"greedy80211/internal/experiments"
)

func TestRunExitCodes(t *testing.T) {
	tests := []struct {
		name string
		args []string
		want int
	}{
		{"no args", nil, 2},
		{"bad flag", []string{"-nope"}, 2},
		{"list", []string{"-list"}, 0},
		{"unknown artifact", []string{"-run", "fig99"}, 1},
		{"tab3 (analytic, instant)", []string{"-run", "tab3"}, 0},
		{"fig1 quick", []string{"-run", "fig1", "-quick"}, 0},
		{"custom seeds and duration", []string{"-run", "tab3", "-seeds", "1",
			"-duration", "1s", "-seed", "9"}, 0},
		{"csv output", []string{"-run", "tab3", "-csv", t.TempDir()}, 0},
		{"json output", []string{"-run", "tab3", "-json", t.TempDir()}, 0},
		{"comma-separated ids", []string{"-run", "tab3,tab1", "-quick", "-duration", "100ms"}, 0},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := run(tt.args); got != tt.want {
				t.Errorf("run(%v) = %d, want %d", tt.args, got, tt.want)
			}
		})
	}
}

func TestJSONOutputWritesStableFile(t *testing.T) {
	dir := t.TempDir()
	if got := run([]string{"-run", "tab3", "-json", dir}); got != 0 {
		t.Fatalf("run exited %d", got)
	}
	f, err := os.Open(filepath.Join(dir, "tab3.json"))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	res, err := experiments.DecodeResult(f)
	if err != nil {
		t.Fatal(err)
	}
	if res.ID != "tab3" || len(res.Tables) == 0 {
		t.Errorf("decoded result: id %q, %d tables", res.ID, len(res.Tables))
	}
}

// One failing artifact must not abort the rest: every id is attempted,
// the summary names the failure, and the exit status is nonzero.
func TestRunAllContinuesPastFailure(t *testing.T) {
	real := runArtifact
	defer func() { runArtifact = real }()
	var attempted []string
	runArtifact = func(id string, cfg experiments.RunConfig) (*experiments.Result, error) {
		attempted = append(attempted, id)
		if id == "tab1" {
			return nil, errors.New("injected failure")
		}
		return real(id, cfg)
	}
	if got := run([]string{"-run", "tab3,tab1,extc", "-quick", "-duration", "100ms"}); got != 1 {
		t.Errorf("run with a failing artifact exited %d, want 1", got)
	}
	if len(attempted) != 3 {
		t.Errorf("attempted %v, want all three artifacts", attempted)
	}
}
