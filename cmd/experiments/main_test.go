package main

import "testing"

func TestRunExitCodes(t *testing.T) {
	tests := []struct {
		name string
		args []string
		want int
	}{
		{"no args", nil, 2},
		{"bad flag", []string{"-nope"}, 2},
		{"list", []string{"-list"}, 0},
		{"unknown artifact", []string{"-run", "fig99"}, 1},
		{"tab3 (analytic, instant)", []string{"-run", "tab3"}, 0},
		{"fig1 quick", []string{"-run", "fig1", "-quick"}, 0},
		{"custom seeds and duration", []string{"-run", "tab3", "-seeds", "1",
			"-duration", "1s", "-seed", "9"}, 0},
		{"csv output", []string{"-run", "tab3", "-csv", t.TempDir()}, 0},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := run(tt.args); got != tt.want {
				t.Errorf("run(%v) = %d, want %d", tt.args, got, tt.want)
			}
		})
	}
}
