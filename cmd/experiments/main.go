// Command experiments regenerates the paper's tables and figures.
//
// Usage:
//
//	experiments -list
//	experiments -run fig1
//	experiments -run all -quick
//	experiments -run fig4 -seeds 5 -duration 5s
//	experiments -artifact fig2 -metrics fig2_metrics.jsonl
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"time"

	"greedy80211/internal/experiments"
	"greedy80211/internal/metrics"
	"greedy80211/internal/runner"
	"greedy80211/internal/sim"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	fs := flag.NewFlagSet("experiments", flag.ContinueOnError)
	var (
		list     = fs.Bool("list", false, "list every artifact and exit")
		id       = fs.String("run", "", "artifact id (fig1..fig24, tab1..tab9) or \"all\"")
		artifact = fs.String("artifact", "", "alias for -run")
		seeds    = fs.Int("seeds", 0, "seeded repetitions per data point (default 5, paper methodology)")
		baseSeed = fs.Int64("seed", 0, "base seed")
		duration = fs.Duration("duration", 0, "simulated time per run (default 5s)")
		quick    = fs.Bool("quick", false, "1 seed, 2s runs, trimmed sweeps")
		csvDir   = fs.String("csv", "", "also write each artifact's data as CSV files into this directory")
		parallel = fs.Int("parallel", runtime.GOMAXPROCS(0),
			"worker-pool size for (sweep-point × seed) fan-out; 1 = sequential (output is identical either way)")
		metricsOut = fs.String("metrics", "",
			"write a per-station telemetry sidecar to this file (.csv for CSV, else JSONL); identical for any -parallel value")
		cpuProfile = fs.String("cpuprofile", "", "write a CPU profile to this file")
		memProfile = fs.String("memprofile", "", "write a heap profile to this file on exit")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	runner.SetLimit(*parallel)
	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiments: creating cpu profile: %v\n", err)
			return 1
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "experiments: starting cpu profile: %v\n", err)
			f.Close()
			return 1
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *memProfile != "" {
		path := *memProfile
		defer func() {
			f, err := os.Create(path)
			if err != nil {
				fmt.Fprintf(os.Stderr, "experiments: writing heap profile: %v\n", err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "experiments: writing heap profile: %v\n", err)
			}
		}()
	}
	if *list {
		for _, reg := range experiments.All() {
			fmt.Printf("%-6s %s\n", reg.ID, reg.Title)
		}
		return 0
	}
	if *id == "" {
		*id = *artifact
	}
	if *id == "" {
		fmt.Fprintln(os.Stderr, "experiments: -run <id> or -list required")
		fs.Usage()
		return 2
	}
	cfg := experiments.RunConfig{
		Seeds:    *seeds,
		BaseSeed: *baseSeed,
		Duration: sim.Time(duration.Nanoseconds()),
		Quick:    *quick,
	}
	ids := []string{*id}
	if *id == "all" {
		ids = ids[:0]
		for _, reg := range experiments.All() {
			ids = append(ids, reg.ID)
		}
	}
	var sidecar []metrics.Labeled
	for _, art := range ids {
		start := time.Now()
		if *metricsOut != "" {
			cfg.Metrics = metrics.NewCollector()
		}
		res, err := experiments.Run(art, cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
			return 1
		}
		fmt.Print(res.String())
		if *csvDir != "" {
			if err := writeCSVs(*csvDir, res); err != nil {
				fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
				return 1
			}
		}
		if cfg.Metrics != nil {
			for i, snap := range cfg.Metrics.Snapshots() {
				sidecar = append(sidecar, metrics.Labeled{Label: art, Group: i, Snap: snap})
			}
		}
		fmt.Printf("(%s regenerated in %.1fs)\n\n", art, time.Since(start).Seconds())
	}
	if *metricsOut != "" {
		if err := metrics.WriteFile(*metricsOut, sidecar...); err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
			return 1
		}
		fmt.Printf("telemetry sidecar written to %s\n", *metricsOut)
	}
	return 0
}

func writeCSVs(dir string, res *experiments.Result) error {
	files, err := res.CSVFiles()
	if err != nil {
		return err
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("creating csv dir: %w", err)
	}
	for name, doc := range files {
		if err := os.WriteFile(filepath.Join(dir, name), []byte(doc), 0o644); err != nil {
			return fmt.Errorf("writing %s: %w", name, err)
		}
	}
	return nil
}
