// Command experiments regenerates the paper's tables and figures.
//
// Usage:
//
//	experiments -list
//	experiments -run fig1
//	experiments -run all -quick
//	experiments -run fig4,fig5 -seeds 5 -duration 5s
//	experiments -artifact fig2 -metrics fig2_metrics.jsonl
//	experiments -run all -json out/ -metrics out/metrics.jsonl
//	experiments -analytic fig2
//
// -run accepts a single id, a comma-separated list, or "all". A failing
// artifact does not abort the rest of the campaign: every requested
// artifact is attempted, a pass/fail summary is printed when more than
// one ran, and the exit status is nonzero if any failed.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"time"

	"greedy80211/internal/analytic"
	"greedy80211/internal/experiments"
	"greedy80211/internal/metrics"
	"greedy80211/internal/profileflags"
	"greedy80211/internal/runner"
	"greedy80211/internal/scenario"
	"greedy80211/internal/sim"
	"greedy80211/internal/stats"
	"greedy80211/internal/trace"
	"greedy80211/internal/versionflag"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

// runArtifact is experiments.Run, injectable so tests can exercise the
// continue-past-failure path without a deliberately broken registry.
var runArtifact = experiments.Run

func run(args []string) int {
	fs := flag.NewFlagSet("experiments", flag.ContinueOnError)
	var (
		list     = fs.Bool("list", false, "list every artifact and exit")
		id       = fs.String("run", "", "artifact id (fig1..fig24, tab1..tab9), comma-separated list, or \"all\"")
		artifact = fs.String("artifact", "", "alias for -run")
		analyticMode = fs.Bool("analytic", false,
			"print the Markov-chain analytic tier's predictions for the artifact(s) instead of simulating (no sweep, milliseconds instead of minutes)")
		seeds    = fs.Int("seeds", 0, "seeded repetitions per data point (default 5, paper methodology)")
		baseSeed = fs.Int64("seed", 0, "base seed")
		duration = fs.Duration("duration", 0, "simulated time per run (default 5s)")
		quick    = fs.Bool("quick", false, "1 seed, 2s runs, trimmed sweeps")
		csvDir   = fs.String("csv", "", "also write each artifact's data as CSV files into this directory")
		jsonDir  = fs.String("json", "", "also write each artifact as stable JSON (<id>.json) into this directory")
		parallel = fs.Int("parallel", runtime.GOMAXPROCS(0),
			"worker-pool size for (sweep-point × seed) fan-out; 1 = sequential (output is identical either way)")
		metricsOut = fs.String("metrics", "",
			"write a per-station telemetry sidecar to this file (.csv for CSV, else JSONL); identical for any -parallel value")
		traceDir = fs.String("trace", "",
			"attach a flight recorder to every world and write per-run JSONL traces + ASCII timelines into this directory; identical for any -parallel value")
		traceCap = fs.Int("trace-cap", 0, "flight-recorder ring capacity in events per run (default 4096)")
		version  = versionflag.Register(fs)
		prof     = profileflags.Register(fs)
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if versionflag.Handle(version, os.Stdout, "experiments") {
		return 0
	}
	runner.SetLimit(*parallel)
	stopProf, err := prof.Start()
	if err != nil {
		fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
		return 1
	}
	defer stopProf()
	if *list {
		for _, reg := range experiments.All() {
			fmt.Printf("%-6s %s\n", reg.ID, reg.Title)
		}
		return 0
	}
	if *id == "" {
		*id = *artifact
	}
	if *id == "" && fs.NArg() > 0 {
		*id = strings.Join(fs.Args(), ",")
	}
	if *id == "" {
		fmt.Fprintln(os.Stderr, "experiments: -run <id> or -list required")
		fs.Usage()
		return 2
	}
	if *analyticMode {
		return runAnalytic(*id)
	}
	cfg := experiments.RunConfig{
		Seeds:    *seeds,
		BaseSeed: *baseSeed,
		Duration: sim.Time(duration.Nanoseconds()),
		Quick:    *quick,
	}
	var ids []string
	for _, art := range strings.Split(*id, ",") {
		art = strings.TrimSpace(art)
		if art == "" {
			continue
		}
		if art == "all" {
			for _, reg := range experiments.All() {
				ids = append(ids, reg.ID)
			}
			continue
		}
		ids = append(ids, art)
	}
	var sidecar []metrics.Labeled
	var failed []string
	for _, art := range ids {
		start := time.Now()
		if *metricsOut != "" {
			cfg.Metrics = metrics.NewCollector()
			// Pool occupancy rides along with -metrics as an stdout-only
			// report; it never enters the sidecar, which must stay
			// byte-identical with pooling on or off.
			cfg.Pools = new(scenario.PoolReport)
		}
		if *traceDir != "" {
			cfg.Trace = trace.NewCollector(*traceCap)
		}
		res, err := runArtifact(art, cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %s: %v\n", art, err)
			failed = append(failed, art)
			continue
		}
		fmt.Print(res.String())
		if cfg.Trace != nil {
			paths, err := trace.ExportDir(*traceDir, art, cfg.Trace.Recordings())
			if err != nil {
				fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
				return 1
			}
			fmt.Printf("%d trace files written to %s\n", len(paths), *traceDir)
		}
		if *csvDir != "" {
			if err := writeCSVs(*csvDir, res); err != nil {
				fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
				return 1
			}
		}
		if *jsonDir != "" {
			if err := writeJSON(*jsonDir, res); err != nil {
				fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
				return 1
			}
		}
		if cfg.Metrics != nil {
			for i, snap := range cfg.Metrics.Snapshots() {
				sidecar = append(sidecar, metrics.Labeled{Label: art, Group: i, Snap: snap})
			}
		}
		if cfg.Pools != nil {
			fmt.Println(cfg.Pools.String())
		}
		fmt.Printf("(%s regenerated in %.1fs)\n\n", art, time.Since(start).Seconds())
	}
	if *metricsOut != "" {
		if err := metrics.WriteFile(*metricsOut, sidecar...); err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
			return 1
		}
		fmt.Printf("telemetry sidecar written to %s\n", *metricsOut)
	}
	if len(ids) > 1 {
		fmt.Printf("%d/%d artifacts regenerated", len(ids)-len(failed), len(ids))
		if len(failed) > 0 {
			fmt.Printf("; FAILED: %s", strings.Join(failed, ", "))
		}
		fmt.Println()
	}
	if len(failed) > 0 {
		return 1
	}
	return 0
}

// runAnalytic prints the Markov-chain tier's predictions for each
// requested artifact: the per-check predicted values the report gate
// compares against golden wants, then each solved scenario's per-class
// fixed point. "all" means every artifact the model covers.
func runAnalytic(id string) int {
	var ids []string
	for _, art := range strings.Split(id, ",") {
		art = strings.TrimSpace(art)
		if art == "" {
			continue
		}
		if art == "all" {
			ids = append(ids, analytic.PredictedArtifacts()...)
			continue
		}
		ids = append(ids, art)
	}
	failed := 0
	for _, art := range ids {
		pred, err := analytic.Predict(art)
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
			failed++
			continue
		}
		fmt.Printf("%s — analytic predictions (no simulation)\n", art)
		checks := stats.Table{Header: []string{"check", "model"}}
		for _, cid := range sortedKeys(pred.Values) {
			checks.AddRow(cid, pred.Values[cid])
		}
		fmt.Print(checks.String())
		for _, sc := range pred.Scenarios {
			fmt.Printf("scenario %s (converged in %d iterations, residual %.2g)\n",
				sc.Label, sc.Result.Iterations, sc.Result.Residual)
			t := stats.Table{Header: []string{"class", "n", "tau", "p", "avg CW",
				"drop", "Mbps/station", "airtime"}}
			for _, c := range sc.Result.Classes {
				t.AddRow(c.Name, float64(c.N), c.TauEffective, c.PCollision,
					c.AvgCW, c.DropProb, c.PerStationBps/1e6, c.AirtimeShare)
			}
			fmt.Print(t.String())
		}
		fmt.Println()
	}
	if failed > 0 {
		return 1
	}
	return 0
}

func sortedKeys(m map[string]float64) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func writeCSVs(dir string, res *experiments.Result) error {
	files, err := res.CSVFiles()
	if err != nil {
		return err
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("creating csv dir: %w", err)
	}
	for name, doc := range files {
		if err := os.WriteFile(filepath.Join(dir, name), []byte(doc), 0o644); err != nil {
			return fmt.Errorf("writing %s: %w", name, err)
		}
	}
	return nil
}

func writeJSON(dir string, res *experiments.Result) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("creating json dir: %w", err)
	}
	f, err := os.Create(filepath.Join(dir, res.ID+".json"))
	if err != nil {
		return fmt.Errorf("writing %s.json: %w", res.ID, err)
	}
	err = res.WriteJSON(f)
	if cerr := f.Close(); err == nil && cerr != nil {
		err = fmt.Errorf("closing %s.json: %w", res.ID, cerr)
	}
	return err
}
