package main

import (
	"os"
	"path/filepath"
	"runtime"
	"testing"

	"greedy80211/internal/runner"
)

// quickRefdata writes a minimal single-artifact golden dir so the CLI
// tests simulate for milliseconds. want 31 sits at the measured GS CW
// for any seed (CWmin pinning), so the positive case is robust.
const quickBody = `{
  "artifact": "fig2",
  "claim": "GS CW pins at CWmin",
  "config": {"seeds": 1, "duration": "200ms", "quick": true},
  "checks": [
    {"id": "gs-cw", "kind": "point", "series": "GS avg CW", "x": 0,
     "want": 31, "pass": {"rel": 0.25}}
  ]
}`

// tamperedBody is the same check with an impossible golden value — the
// shape of CI's negative test (tamper a copy, expect the gate to trip).
const tamperedBody = `{
  "artifact": "fig2",
  "claim": "GS CW pins at CWmin",
  "config": {"seeds": 1, "duration": "200ms", "quick": true},
  "checks": [
    {"id": "gs-cw", "kind": "point", "series": "GS avg CW", "x": 0,
     "want": 1e6, "pass": {"rel": 0.01}}
  ]
}`

func writeDir(t *testing.T, body string) string {
	t.Helper()
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "fig2.json"), []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	return dir
}

func runCLI(t *testing.T, args ...string) int {
	t.Helper()
	defer runner.SetLimit(runtime.GOMAXPROCS(0))
	return run(args)
}

func TestRunGatePassesAndWritesOutputs(t *testing.T) {
	out := filepath.Join(t.TempDir(), "RESULTS.md")
	verdicts := filepath.Join(t.TempDir(), "verdicts.json")
	code := runCLI(t, "-refdata", writeDir(t, quickBody),
		"-out", out, "-verdicts", verdicts, "-bench", "")
	if code != 0 {
		t.Fatalf("exit %d, want 0", code)
	}
	for _, f := range []string{out, verdicts} {
		if fi, err := os.Stat(f); err != nil || fi.Size() == 0 {
			t.Errorf("output %s missing or empty (err=%v)", f, err)
		}
	}
}

func TestRunGateFailsOnTamperedRefdata(t *testing.T) {
	code := runCLI(t, "-refdata", writeDir(t, tamperedBody),
		"-out", filepath.Join(t.TempDir(), "RESULTS.md"), "-verdicts", "", "-bench", "")
	if code != 1 {
		t.Fatalf("exit %d, want 1 (tampered golden value must trip the gate)", code)
	}
}

func TestRunGateFailsOnColdStoreNoCompute(t *testing.T) {
	code := runCLI(t, "-refdata", writeDir(t, quickBody),
		"-store", t.TempDir(), "-no-compute",
		"-out", filepath.Join(t.TempDir(), "RESULTS.md"), "-verdicts", "", "-bench", "")
	if code != 1 {
		t.Fatalf("exit %d, want 1 (cold store in read-only mode gates as missing)", code)
	}
}

func TestRunCheckDocsCurrent(t *testing.T) {
	// The committed EXPERIMENTS.md block must be current against the
	// embedded refdata — same invariant CI's docs step enforces.
	if code := runCLI(t, "-check-docs", "-docs", filepath.Join("..", "..", "EXPERIMENTS.md")); code != 0 {
		t.Fatalf("-check-docs exit %d, want 0 (run `go run ./cmd/report -write-docs`)", code)
	}
}
