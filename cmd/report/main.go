// Command report is the reproduction gate: it regenerates the gated
// artifacts (or reads them from a campaign store), joins every pinned
// data point against the checked-in golden values in
// internal/report/refdata/, and writes RESULTS.md plus an optional
// verdicts.json. The exit status is the gate: nonzero when any check
// fails or goes missing (and, with -strict, when any drifts).
//
// Usage:
//
//	report                             # fresh run, write RESULTS.md + verdicts.json
//	report -store .report-store        # compute-through-cache, byte-identical on a warm store
//	report -store s -no-compute        # CI read-only mode: a cold store gates as missing
//	report -out - -verdicts ""         # report to stdout, no verdicts file
//	report -refdata dir/               # override the embedded golden set (CI negative test)
//	report -check-docs                 # verify EXPERIMENTS.md's artifact↔paper map is current
//	report -write-docs                 # regenerate that map in place
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"

	"greedy80211/internal/campaign"
	"greedy80211/internal/profileflags"
	"greedy80211/internal/report"
	"greedy80211/internal/runner"
	"greedy80211/internal/versionflag"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	fs := flag.NewFlagSet("report", flag.ContinueOnError)
	var (
		out          = fs.String("out", "RESULTS.md", "write the Markdown report here (\"-\" for stdout)")
		verdicts     = fs.String("verdicts", "verdicts.json", "write machine-readable verdicts here (empty to skip)")
		store        = fs.String("store", "", "campaign store directory; empty runs everything fresh")
		noComp       = fs.Bool("no-compute", false, "with -store: never simulate, gate on whatever the store holds")
		refdata      = fs.String("refdata", "", "load golden values from this directory instead of the embedded set")
		strict       = fs.Bool("strict", false, "drift verdicts gate too")
		analyticGate = fs.Bool("analytic-gate", false,
			"fail when any model-banded check has a missing analytic prediction (model drift/fail stay advisory)")
		bench       = fs.String("bench", ".", "directory holding BENCH_*.json for the footer (empty to omit)")
		docsPath    = fs.String("docs", "EXPERIMENTS.md", "document carrying the artifact↔paper map block")
		checkDoc    = fs.Bool("check-docs", false, "verify the map block in -docs is current, then exit")
		writeDoc    = fs.Bool("write-docs", false, "regenerate the map block in -docs in place, then exit")
		traceOnFail = fs.String("trace-on-fail", "",
			"when the gate fails, re-run each gating artifact with a flight recorder and write JSONL traces, timelines, and invariant summaries into this directory")
		parallel = fs.Int("parallel", runtime.GOMAXPROCS(0),
			"worker-pool size for artifact regeneration; 1 = sequential (output is identical either way)")
		version = versionflag.Register(fs)
		prof    = profileflags.Register(fs)
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if versionflag.Handle(version, os.Stdout, "report") {
		return 0
	}
	runner.SetLimit(*parallel)
	stopProf, err := prof.Start()
	if err != nil {
		fmt.Fprintf(os.Stderr, "report: %v\n", err)
		return 1
	}
	defer stopProf()

	sets, err := loadSets(*refdata)
	if err != nil {
		fmt.Fprintf(os.Stderr, "report: %v\n", err)
		return 1
	}

	if *checkDoc || *writeDoc {
		return runDocs(*docsPath, sets, *writeDoc)
	}

	var rep *report.Report
	if *store != "" {
		var st *campaign.Store
		st, err = campaign.OpenStore(*store)
		if err == nil {
			rep, err = report.FromStore(context.Background(), sets, st, !*noComp, os.Stderr)
		}
	} else {
		rep, err = report.ComputeFresh(sets)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "report: %v\n", err)
		return 1
	}

	var benchSnap *report.BenchSnapshot
	if *bench != "" {
		benchSnap, err = report.LatestBenchSnapshot(*bench)
		if err != nil {
			fmt.Fprintf(os.Stderr, "report: %v\n", err)
			return 1
		}
	}
	var md strings.Builder
	report.RenderMarkdown(&md, rep, benchSnap)
	if *out == "-" {
		fmt.Print(md.String())
	} else if err := os.WriteFile(*out, []byte(md.String()), 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "report: %v\n", err)
		return 1
	}
	if *verdicts != "" {
		f, err := os.Create(*verdicts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "report: %v\n", err)
			return 1
		}
		err = report.WriteVerdicts(f, rep)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "report: %v\n", err)
			return 1
		}
	}

	fmt.Fprintf(os.Stderr, "report: %d checks — %d pass, %d drift, %d fail, %d missing\n",
		rep.Checks(), rep.Pass, rep.Drift, rep.Fail, rep.Missing)
	fmt.Fprintf(os.Stderr, "report: analytic tier — %d model checks: %d pass, %d drift, %d fail, %d missing\n",
		rep.ModelChecks(), rep.ModelPass, rep.ModelDrift, rep.ModelFail, rep.ModelMissing)
	if *analyticGate && rep.ModelMissing > 0 {
		fmt.Fprintf(os.Stderr, "report: %d model-banded checks without predictions — analytic gate FAILED\n",
			rep.ModelMissing)
		return 1
	}
	if n := rep.Gating(*strict); n > 0 {
		fmt.Fprintf(os.Stderr, "report: %d gating verdicts — reproduction gate FAILED\n", n)
		if *traceOnFail != "" {
			ids := rep.FailedArtifacts(*strict)
			paths, err := report.CaptureTraces(rep.Config, ids, *traceOnFail, 0)
			if err != nil {
				fmt.Fprintf(os.Stderr, "report: capturing traces: %v\n", err)
			}
			fmt.Fprintf(os.Stderr, "report: %d flight-recorder files for %s written to %s\n",
				len(paths), strings.Join(ids, ", "), *traceOnFail)
		}
		return 1
	}
	return 0
}

func loadSets(dir string) ([]*report.RefSet, error) {
	if dir != "" {
		return report.LoadDir(dir)
	}
	return report.LoadEmbedded()
}

func runDocs(path string, sets []*report.RefSet, write bool) int {
	raw, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "report: %v\n", err)
		return 1
	}
	if write {
		updated, err := report.UpdateDocs(string(raw), sets)
		if err != nil {
			fmt.Fprintf(os.Stderr, "report: %v\n", err)
			return 1
		}
		if updated == string(raw) {
			fmt.Fprintf(os.Stderr, "report: %s map block already current\n", path)
			return 0
		}
		if err := os.WriteFile(path, []byte(updated), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "report: %v\n", err)
			return 1
		}
		fmt.Fprintf(os.Stderr, "report: %s map block regenerated\n", path)
		return 0
	}
	if err := report.CheckDocs(string(raw), sets); err != nil {
		fmt.Fprintf(os.Stderr, "report: %v\n", err)
		return 1
	}
	fmt.Fprintf(os.Stderr, "report: %s map block is current\n", path)
	return 0
}
