module greedy80211

go 1.22
